"""Unified search engine: one driver for every exploration loop.

The paper's study is really *many* searches — NASAIC RL episodes plus
NAS-only, hardware-aware-NAS, Monte-Carlo, brute-force and two-stage
pipeline baselines, each across several workload/ASIC scenarios (Tables
1-2, Fig. 6).  Before this module, every loop hand-rolled the same four
concerns: the round loop itself, the EvalService wiring, budget/stats
bookkeeping and result assembly.  Following the optimizer-agnostic
driver designs of Apollo (Yazdanbakhsh et al.) and NAAS (Lin et al.),
those concerns now live in exactly one place.

Split of responsibilities:

- a **strategy** (:class:`SearchStrategy`) owns the *optimiser*: which
  candidates to sample next, how to learn from their evaluations, and
  how to assemble its result.  NASAIC's controller episodes, the
  evolutionary search and every baseline implement it.
- the **driver** (:class:`SearchDriver`) owns the *loop*: the
  sample-then-batch-price pattern (all of a round's candidates are
  proposed before any is priced, so batching never perturbs an RNG
  stream), the evaluation-service lifecycle, per-run stats attribution
  (stats deltas absorbed into the result so shared campaign caches
  still yield per-run accounting), progress events, and
  **checkpoint/resume**.

Round protocol (one ``step()``)::

    pairs = strategy.propose(k)        # draws RNG, prices nothing
    evals = service.evaluate_many(pairs)   # RNG-free, cached, batched
    log   = strategy.observe(evals)    # learns, records, trains

Checkpoint/resume: after any round the driver can serialise
``strategy.state()`` (optimiser weights, RNG stream positions via
:func:`repro.utils.rng.rng_state`, best-so-far results) together with
``service.state_snapshot()`` (LRU cache, memo, counters) through
:mod:`repro.core.serialization`.  Restoring both makes the resumed run
**bit-identical** to the uninterrupted one — same trajectory, same
``pricing`` block, same accounting (wall-clock timings aside) — which
``tests/test_driver.py`` asserts at every possible interruption point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.core.evaluator import HardwareEvaluation
from repro.core.evalservice import EvalService
from repro.core.serialization import load_checkpoint, save_checkpoint

__all__ = ["RoundLog", "SearchDriver", "SearchStrategy"]

#: One candidate: a (networks, accelerator) pair as consumed by
#: :meth:`repro.core.evalservice.EvalService.evaluate_many`.
Candidate = tuple


class RoundLog:
    """Per-round diagnostics a strategy returns from ``observe``.

    Attributes:
        round: The strategy's own round counter (episode, generation,
            chunk index ...).
        message: Human-readable progress line; the driver emits it every
            ``progress_every`` rounds.
    """

    __slots__ = ("round", "message")

    def __init__(self, round: int, message: str = "") -> None:
        self.round = round
        self.message = message


@runtime_checkable
class SearchStrategy(Protocol):
    """What the driver needs from an optimiser.

    Implementations: :class:`repro.core.search.NASAIC` (one round = one
    RL episode), :class:`repro.core.evolution.EvolutionarySearch` (one
    round = one generation) and the baseline strategies in
    :mod:`repro.core.baselines` (NAS-only, hardware-aware NAS,
    Monte-Carlo, design sweeps).
    """

    #: Stable identifier recorded in checkpoints and campaign JSON.
    strategy_name: str

    @property
    def total_rounds(self) -> int:
        """How many rounds a complete run executes."""
        ...

    def propose(self, k: int | None = None) -> Sequence[Candidate]:
        """Draw the round's candidates (consumes RNG, prices nothing).

        ``k`` is the driver's batch-size hint; strategies with a fixed
        round structure (an RL episode, an EA generation) ignore it,
        stream-like strategies (Monte-Carlo, sweeps) cap their chunk at
        ``k``.  May return no candidates (e.g. accuracy-only NAS).
        """
        ...

    def observe(self, evaluations: Sequence[HardwareEvaluation]
                ) -> RoundLog | None:
        """Consume the priced candidates (in ``propose`` order): update
        the optimiser, run the training path, record solutions."""
        ...

    def finish(self) -> Any:
        """Assemble the run's result (the driver absorbs eval stats)."""
        ...

    def state(self) -> dict:
        """Picklable snapshot of all mutable run state: optimiser
        parameters, RNG stream positions, pending batches, the
        result-so-far (including best-so-far) and training-path memo."""
        ...

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot (inverse operation)."""
        ...


class SearchDriver:
    """Drives one strategy to completion over one evaluation service.

    Args:
        strategy: The optimiser to drive.
        service: Hardware-pricing service.  May be ``None`` only for
            strategies that never propose candidates (accuracy-only
            NAS).  The driver does *not* close the service — ownership
            stays with the caller (strategy facade, campaign, or a
            ``with EvalService(...)`` block), so one cache can outlive
            many runs.
        batch_size: Hint forwarded to ``propose`` for stream-like
            strategies; ``None`` lets the strategy choose.
        checkpoint_path: Where to write checkpoints (no checkpointing
            when ``None``).
        checkpoint_every: Write a checkpoint every N completed rounds
            (0 disables periodic writes; :meth:`save_checkpoint` can
            still be called explicitly).
        progress_every: Emit the strategy's round message every N rounds
            (``None``/0 = silent).
        progress: Sink for progress messages (default: ``print``).
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        service: EvalService | None,
        *,
        batch_size: int | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        progress_every: int | None = None,
        progress: Callable[[str], Any] = print,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.strategy = strategy
        self.service = service
        self.batch_size = batch_size
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.progress_every = progress_every
        self.progress = progress
        self._round = 0
        self._stats_start = (service.stats.snapshot()
                             if service is not None else None)
        self._result: Any = None
        self._finished = False

    # ------------------------------------------------------------------
    # Loop
    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """Completed rounds so far."""
        return self._round

    @property
    def done(self) -> bool:
        return self._round >= self.strategy.total_rounds

    def step(self) -> bool:
        """Run one round; returns whether rounds remain.

        The round is the driver's only pattern: propose (RNG), price as
        one batch (RNG-free), observe.  Periodic checkpoints are written
        *after* the round completes, so a checkpoint always sits on a
        round boundary and resume never replays a partial round.
        """
        if self.done:
            return False
        pairs = list(self.strategy.propose(self.batch_size))
        if pairs:
            if self.service is None:
                raise RuntimeError(
                    f"strategy {self.strategy.strategy_name!r} proposed "
                    "candidates but the driver has no evaluation service")
            evaluations = self.service.evaluate_many(pairs)
        else:
            evaluations = []
        log = self.strategy.observe(evaluations)
        self._round += 1
        if (self.progress_every and log is not None and log.message
                and self._round % self.progress_every == 0):
            self.progress(log.message)
        if (self.checkpoint_path is not None and self.checkpoint_every
                and self._round % self.checkpoint_every == 0
                and not self.done):
            self.save_checkpoint()
        return not self.done

    def run(self, max_rounds: int | None = None) -> Any:
        """Run to completion (or at most ``max_rounds`` more rounds).

        Returns the strategy's finished result, or ``None`` if the
        budget ran out before the final round — call :meth:`run` again
        (or :meth:`step`) to continue.
        """
        steps = 0
        try:
            while not self.done:
                if max_rounds is not None and steps >= max_rounds:
                    return None
                self.step()
                steps += 1
        finally:
            # Evaluations persist as they are computed, but the
            # cross-design cost memo normally reaches the store only on
            # service close — flush it here too so an exception or
            # KeyboardInterrupt mid-run cannot silently drop priced
            # work (idempotent: only fresh entries are appended).
            if self.service is not None:
                self.service.flush_store()
        return self.finish()

    def finish(self) -> Any:
        """Assemble the result once and absorb this run's eval stats.

        Stats are absorbed as a *delta* against the service's counters
        at driver start, so runs sharing one campaign-wide service still
        report their own budget (`hardware_evaluations`, cache and
        pricing counters) rather than the cache's lifetime totals.
        """
        if not self._finished:
            result = self.strategy.finish()
            if self.service is not None and hasattr(result,
                                                    "absorb_eval_stats"):
                result.absorb_eval_stats(
                    self.service.stats.delta(self._stats_start))
            self._result = result
            self._finished = True
        return self._result

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str | Path | None = None) -> Path:
        """Write the run's full state to ``path`` (atomic replace)."""
        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        if self.service is not None and self.service.store is not None:
            # Make the persistent store consistent with the checkpoint:
            # a resume sees every memo entry the checkpointed run held.
            self.service.flush_store()
        payload = {
            "strategy_name": self.strategy.strategy_name,
            "round": self._round,
            "total_rounds": self.strategy.total_rounds,
            "context_salt": (self.service.context_salt
                             if self.service is not None else None),
            "store_path": self._store_path(),
            "stats_start": self._stats_start,
            "strategy_state": self.strategy.state(),
            "service_state": (self.service.state_snapshot()
                              if self.service is not None else None),
        }
        return save_checkpoint(target, payload)

    def _store_path(self) -> str | None:
        """Resolved path of the service's persistent store, if any."""
        if self.service is None or self.service.store is None:
            return None
        return str(self.service.store.path.resolve())

    def restore(self, path: str | Path) -> "SearchDriver":
        """Resume a checkpointed run into this (freshly built) driver.

        The caller reconstructs the strategy and service exactly as the
        original run did (same config, same seed, same workload) and the
        checkpoint is verified against them — mismatched strategy,
        budget or evaluation context fails loudly instead of silently
        diverging.  Resume assumes the service is exclusive to this run
        (its cache is restored wholesale).
        """
        payload = load_checkpoint(path)
        if payload["strategy_name"] != self.strategy.strategy_name:
            # Late import: the registry registers strategies that import
            # this module, so the dependency must not be at module level.
            from repro.core.strategies.registry import strategy_names
            raise ValueError(
                f"checkpoint is for strategy "
                f"{payload['strategy_name']!r}, not "
                f"{self.strategy.strategy_name!r} "
                f"(registered strategies: {', '.join(strategy_names())})")
        if payload["total_rounds"] != self.strategy.total_rounds:
            raise ValueError(
                f"checkpoint budget ({payload['total_rounds']} rounds) "
                f"does not match this run "
                f"({self.strategy.total_rounds} rounds)")
        salt = (self.service.context_salt
                if self.service is not None else None)
        if payload["context_salt"] != salt:
            raise ValueError(
                "checkpoint evaluation context (workload specs/bounds, "
                "cost parameters, rho) does not match this run")
        if payload.get("store_path") != self._store_path():
            raise ValueError(
                f"checkpoint was written against evaluation store "
                f"{payload.get('store_path')!r}, but this run uses "
                f"{self._store_path()!r} — resume with the same store "
                f"(or the same absence of one)")
        self.strategy.load_state(payload["strategy_state"])
        if self.service is not None and payload["service_state"] is not None:
            self.service.restore_state(payload["service_state"])
        stats_start = payload["stats_start"]
        self._stats_start = (stats_start.snapshot()
                             if stats_start is not None else None)
        self._round = payload["round"]
        self._result = None
        self._finished = False
        return self
