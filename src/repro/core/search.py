"""NASAIC: the co-exploration framework (§IV).

One episode follows the optimizer selector's schedule (§IV-②):

1. one **joint step** (``SA = SH = 1``): the controller samples new
   architectures *and* a new accelerator design; the hardware path
   evaluates the design;
2. ``phi`` **hardware-only steps** (``SA = 0, SH = 1``): the architecture
   segments are pinned to the episode's sample (teacher forcing) while the
   hardware segments explore designs for it; each step updates the
   controller with the accuracy-free reward ``-rho * P``;
3. **early pruning**: if none of the ``1 + phi`` designs is feasible, the
   (expensive) training of the episode's architectures is skipped and the
   joint step is updated with ``-rho * P_best``; otherwise the networks
   are trained and the joint step receives the full Eq. 4 reward
   ``weighted(D) - rho * P_best``.

The joint and hardware reward streams have different scales, so each gets
its own REINFORCE trainer (separate reward baselines and RMSProp moments)
over the *shared* controller parameters.

Hardware evaluations route through :class:`repro.core.evalservice.EvalService`
— the ``phi`` hardware-only designs of each episode are sampled first and
priced as one (cached, optionally parallel) batch, which changes neither
the sampling RNG stream nor any evaluation result (the hardware path is
deterministic); the golden regression test pins this.

Seeding contract: every random draw in a NASAIC run derives from
``config.seed`` alone — controller initialisation uses sub-stream 0 and
sampling uses sub-stream 1 of the master generator (see
:mod:`repro.utils.rng`).  No component may fall back to OS entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.allocation import AllocationSpace
from repro.core.bounds_calibration import calibrate_penalty_bounds
from repro.core.choices import JointSearchSpace
from repro.core.controller import ControllerConfig, RNNController
from repro.core.evaluator import Evaluator, HardwareEvaluation
from repro.core.evalservice import EvalService
from repro.core.reinforce import ReinforceConfig, ReinforceTrainer
from repro.core.results import EpisodeRecord, ExploredSolution, SearchResult
from repro.core.reward import episode_reward, weighted_normalised_accuracy
from repro.cost.model import CostModel
from repro.train.surrogate import AccuracySurrogate, default_surrogate
from repro.train.trainer import SurrogateTrainer
from repro.utils.rng import new_rng, spawn_rng
from repro.workloads.workload import Workload

__all__ = ["NASAIC", "NASAICConfig"]


@dataclass(frozen=True)
class NASAICConfig:
    """NASAIC exploration parameters (§V-A defaults).

    Attributes:
        episodes: Exploration episodes ``beta`` (paper: 500).
        hw_steps: Hardware-only designs explored per episode ``phi``
            (paper: 10).
        rho: Penalty coefficient of Eq. 4 (paper: 10).
        seed: Master seed for controller init and sampling.
        joint_batch: Batch size ``m`` of Eq. 1 for the joint-step policy
            updates (gradients are averaged over this many episodes).
        prune_infeasible: The §IV-② early pruning: skip the training path
            whenever no feasible design was found among the ``1 + phi``
            hardware explorations.  Disabling it trains every sampled
            architecture (the ablation baseline) — slower, and explored
            solutions may then violate the specs.
        calibrate_bounds: Replace the workload's penalty bounds with the
            paper-faithful exploration bounds (largest networks on
            maximal designs, see
            :mod:`repro.core.bounds_calibration`) before searching.
        cache_size: LRU capacity of the hardware evaluation cache
            (0 disables caching).
        eval_workers: Process-pool width for batched hardware
            evaluations; 0/1 keeps the batch serial in-process.
        controller: RNN controller hyperparameters.
        reinforce: Policy-gradient hyperparameters.
    """

    episodes: int = 500
    hw_steps: int = 10
    rho: float = 10.0
    seed: int = 7
    joint_batch: int = 5
    prune_infeasible: bool = True
    calibrate_bounds: bool = True
    cache_size: int = 4096
    eval_workers: int = 0
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    reinforce: ReinforceConfig = field(default_factory=ReinforceConfig)

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.hw_steps < 0:
            raise ValueError("hw_steps must be >= 0")
        if self.joint_batch < 1:
            raise ValueError("joint_batch must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.eval_workers < 0:
            raise ValueError("eval_workers must be >= 0")


class NASAIC:
    """Co-exploration of neural architectures and ASIC designs.

    Args:
        workload: Multi-task workload with design specs.
        allocation: Hardware allocation space; defaults to the paper's
            two-slot, 4096-PE, 64-GB/s configuration.
        cost_model: MAESTRO-substitute oracle (fresh one by default).
        surrogate: Accuracy oracle; defaults to the paper-calibrated
            surrogate with the workload's spaces registered.
        config: Exploration parameters.
    """

    def __init__(
        self,
        workload: Workload,
        *,
        allocation: AllocationSpace | None = None,
        cost_model: CostModel | None = None,
        surrogate: AccuracySurrogate | None = None,
        config: NASAICConfig | None = None,
    ) -> None:
        self.allocation = allocation or AllocationSpace()
        self.config = config or NASAICConfig()
        self.cost_model = cost_model or CostModel()
        if self.config.calibrate_bounds:
            bounds = calibrate_penalty_bounds(workload, self.cost_model,
                                              self.allocation)
            workload = workload.with_specs(workload.specs, bounds=bounds)
        self.workload = workload
        if surrogate is None:
            surrogate = default_surrogate(
                [task.space for task in workload.tasks])
        self.surrogate = surrogate
        self.trainer = SurrogateTrainer(surrogate)
        self.evaluator = Evaluator(workload, self.cost_model, self.trainer,
                                   rho=self.config.rho)
        self.evalservice = EvalService(self.evaluator,
                                       cache_size=self.config.cache_size,
                                       workers=self.config.eval_workers)
        self.space = JointSearchSpace(workload, self.allocation)
        master = new_rng(self.config.seed)
        self._init_rng = spawn_rng(master, 0)
        self._sample_rng = spawn_rng(master, 1)
        self.controller = RNNController(
            self.space.decisions, self.config.controller,
            rng=self._init_rng)
        self._joint_updates = ReinforceTrainer(self.controller,
                                               self.config.reinforce)
        self._hw_updates = ReinforceTrainer(self.controller,
                                            self.config.reinforce)
        self._pending_joint: list = []

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, episodes: int | None = None,
            *, progress_every: int | None = None) -> SearchResult:
        """Run the search and return the full exploration record."""
        episodes = episodes or self.config.episodes
        result = SearchResult(name=f"NASAIC[{self.workload.name}]")
        for episode in range(episodes):
            record = self._run_episode(episode, result)
            result.episodes.append(record)
            if progress_every and (episode + 1) % progress_every == 0:
                best = (f"{result.best.weighted_accuracy:.4f}"
                        if result.best else "none")
                print(f"episode {episode + 1}/{episodes} "
                      f"reward={record.reward:+.3f} best={best}")
        result.trainings_run = self.trainer.trainings_run
        result.trainings_skipped = self.trainer.trainings_skipped
        result.absorb_eval_stats(self.evalservice.stats)
        return result

    def _run_episode(self, episode: int,
                     result: SearchResult) -> EpisodeRecord:
        rho = self.config.rho
        # -- joint step (SA = SH = 1) ----------------------------------
        joint_sample = self.controller.sample(
            self._sample_rng, mask_fn=self.space.mask_for)
        joint = self.space.decode(joint_sample.actions)
        best_hw = self.evalservice.evaluate_hardware(
            joint.networks, joint.accelerator)
        # -- hardware-only steps (SA = 0, SH = 1) ----------------------
        # All phi designs are sampled up front (the controller is only
        # updated after the batch), so the misses can be priced as one
        # cached/parallel batch without perturbing the RNG stream.
        forced = {pos: joint_sample.actions[pos]
                  for pos in self.space.arch_positions}
        hw_samples = [
            self.controller.sample(
                self._sample_rng, mask_fn=self.space.mask_for,
                forced_actions=forced)
            for _ in range(self.config.hw_steps)]
        hw_evals = self.evalservice.evaluate_many([
            (joint.networks, self.space.decode(sample.actions).accelerator)
            for sample in hw_samples])
        hw_batch = []
        for hw_sample, hw_eval in zip(hw_samples, hw_evals):
            hw_batch.append((hw_sample, -rho * hw_eval.penalty))
            if self._better_hw(hw_eval, best_hw):
                best_hw = hw_eval
        if hw_batch:
            self._hw_updates.apply_episodes(hw_batch)
        # -- training path with early pruning --------------------------
        trained = (best_hw.penalty == 0.0
                   or not self.config.prune_infeasible)
        if trained:
            accuracies = self.evaluator.train_networks(joint.networks)
            weighted = weighted_normalised_accuracy(self.workload,
                                                    accuracies)
        else:
            self.trainer.skip_training()
            accuracies = ()
            weighted = 0.0
        reward = episode_reward(weighted, best_hw.penalty, rho)
        self._pending_joint.append((joint_sample, reward))
        if len(self._pending_joint) >= self.config.joint_batch:
            self._joint_updates.apply_episodes(self._pending_joint)
            self._pending_joint = []
        # -- bookkeeping ------------------------------------------------
        solution = None
        if trained:
            solution = ExploredSolution(
                networks=joint.networks,
                accelerator=best_hw.accelerator,
                latency_cycles=best_hw.latency_cycles,
                energy_nj=best_hw.energy_nj,
                area_um2=best_hw.area_um2,
                feasible=best_hw.feasible,
                accuracies=accuracies,
                weighted_accuracy=weighted,
            )
            result.record(solution)
        return EpisodeRecord(
            episode=episode,
            solution=solution,
            reward=reward,
            penalty=best_hw.penalty,
            trained=trained,
            hardware_steps=self.config.hw_steps,
        )

    def close(self) -> None:
        """Release evaluation-service resources (worker pool, if any).

        Only needed with ``eval_workers > 1``; use the search as a
        context manager to get it automatically.
        """
        self.evalservice.close()

    def __enter__(self) -> "NASAIC":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _better_hw(candidate: HardwareEvaluation,
                   incumbent: HardwareEvaluation) -> bool:
        """Prefer lower penalty, then lower energy, then lower latency."""
        return ((candidate.penalty, candidate.energy_nj,
                 candidate.latency_cycles)
                < (incumbent.penalty, incumbent.energy_nj,
                   incumbent.latency_cycles))

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def greedy_solution(self) -> ExploredSolution:
        """Evaluate the controller's current argmax sample."""
        rng = new_rng(0)  # unused under greedy decoding
        sample = self.controller.sample(
            rng, mask_fn=self.space.mask_for, greedy=True)
        joint = self.space.decode(sample.actions)
        hardware = self.evalservice.evaluate_hardware(joint.networks,
                                                      joint.accelerator)
        evaluation = self.evaluator.evaluate(joint.networks,
                                             joint.accelerator,
                                             hardware=hardware)
        return ExploredSolution(
            networks=joint.networks,
            accelerator=joint.accelerator,
            latency_cycles=evaluation.hardware.latency_cycles,
            energy_nj=evaluation.hardware.energy_nj,
            area_um2=evaluation.hardware.area_um2,
            feasible=evaluation.feasible,
            accuracies=evaluation.accuracies,
            weighted_accuracy=evaluation.weighted_accuracy,
        )
