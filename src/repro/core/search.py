"""NASAIC: the co-exploration framework (§IV).

One episode follows the optimizer selector's schedule (§IV-②):

1. one **joint step** (``SA = SH = 1``): the controller samples new
   architectures *and* a new accelerator design; the hardware path
   evaluates the design;
2. ``phi`` **hardware-only steps** (``SA = 0, SH = 1``): the architecture
   segments are pinned to the episode's sample (teacher forcing) while the
   hardware segments explore designs for it; each step updates the
   controller with the accuracy-free reward ``-rho * P``;
3. **early pruning**: if none of the ``1 + phi`` designs is feasible, the
   (expensive) training of the episode's architectures is skipped and the
   joint step is updated with ``-rho * P_best``; otherwise the networks
   are trained and the joint step receives the full Eq. 4 reward
   ``weighted(D) - rho * P_best``.

The joint and hardware reward streams have different scales, so each gets
its own REINFORCE trainer (separate reward baselines and RMSProp moments)
over the *shared* controller parameters.

The loop itself is owned by :class:`repro.core.driver.SearchDriver`:
NASAIC implements the :class:`~repro.core.driver.SearchStrategy`
protocol — one round is one episode, :meth:`NASAIC.propose` samples the
joint design plus the ``phi`` hardware-only designs up front, the driver
prices them as one (cached, optionally parallel) batch and
:meth:`NASAIC.observe` applies the controller updates and the training
path.  This changes neither the sampling RNG stream nor any evaluation
result (the hardware path is deterministic); the golden regression test
pins this.  The driver also provides checkpoint/resume: every mutable
piece of run state is covered by :meth:`NASAIC.state`.

Seeding contract: every random draw in a NASAIC run derives from
``config.seed`` alone — controller initialisation uses sub-stream 0 and
sampling uses sub-stream 1 of the master generator (see
:mod:`repro.utils.rng`).  No component may fall back to OS entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.accel.allocation import AllocationSpace
from repro.core.bounds_calibration import calibrate_penalty_bounds
from repro.core.choices import JointSearchSpace
from repro.core.controller import ControllerConfig, RNNController
from repro.core.driver import RoundLog, SearchDriver
from repro.core.evaluator import Evaluator, HardwareEvaluation
from repro.core.evalservice import EvalService, verify_injected_service
from repro.core.store import EvalStore
from repro.core.reinforce import ReinforceConfig, ReinforceTrainer
from repro.core.results import EpisodeRecord, ExploredSolution, SearchResult
from repro.core.reward import episode_reward, weighted_normalised_accuracy
from repro.cost.model import CostModel
from repro.train.surrogate import AccuracySurrogate, default_surrogate
from repro.train.trainer import SurrogateTrainer
from repro.utils.rng import new_rng, restore_rng, rng_state, spawn_rng
from repro.workloads.workload import Workload

__all__ = ["NASAIC", "NASAICConfig"]


@dataclass(frozen=True)
class NASAICConfig:
    """NASAIC exploration parameters (§V-A defaults).

    Attributes:
        episodes: Exploration episodes ``beta`` (paper: 500).
        hw_steps: Hardware-only designs explored per episode ``phi``
            (paper: 10).
        rho: Penalty coefficient of Eq. 4 (paper: 10).
        seed: Master seed for controller init and sampling.
        joint_batch: Batch size ``m`` of Eq. 1 for the joint-step policy
            updates (gradients are averaged over this many episodes).
        prune_infeasible: The §IV-② early pruning: skip the training path
            whenever no feasible design was found among the ``1 + phi``
            hardware explorations.  Disabling it trains every sampled
            architecture (the ablation baseline) — slower, and explored
            solutions may then violate the specs.
        calibrate_bounds: Replace the workload's penalty bounds with the
            paper-faithful exploration bounds (largest networks on
            maximal designs, see
            :mod:`repro.core.bounds_calibration`) before searching.
        cache_size: LRU capacity of the hardware evaluation cache
            (0 disables caching).
        eval_workers: Process-pool width for batched hardware
            evaluations; 0/1 keeps the batch serial in-process.
        controller: RNN controller hyperparameters.
        reinforce: Policy-gradient hyperparameters.
    """

    episodes: int = 500
    hw_steps: int = 10
    rho: float = 10.0
    seed: int = 7
    joint_batch: int = 5
    prune_infeasible: bool = True
    calibrate_bounds: bool = True
    cache_size: int = 4096
    eval_workers: int = 0
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    reinforce: ReinforceConfig = field(default_factory=ReinforceConfig)

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.hw_steps < 0:
            raise ValueError("hw_steps must be >= 0")
        if self.joint_batch < 1:
            raise ValueError("joint_batch must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.eval_workers < 0:
            raise ValueError("eval_workers must be >= 0")


class NASAIC:
    """Co-exploration of neural architectures and ASIC designs.

    Args:
        workload: Multi-task workload with design specs.
        allocation: Hardware allocation space; defaults to the paper's
            two-slot, 4096-PE, 64-GB/s configuration.
        cost_model: MAESTRO-substitute oracle (fresh one by default).
        surrogate: Accuracy oracle; defaults to the paper-calibrated
            surrogate with the workload's spaces registered.
        config: Exploration parameters.
        evalservice: Optional *injected* hardware-evaluation service —
            e.g. a campaign-wide shared cache.  Must price under the
            exact same evaluation context (verified via its salt); the
            search then does not own it (``close`` leaves it alive) and
            ``config.cache_size``/``config.eval_workers`` are ignored.
        store: Optional persistent evaluation store
            (:class:`repro.core.store.EvalStore`) attached to the
            search's own service — the run warm-starts from designs
            priced by earlier runs and appends its own durably.  The
            caller owns the store.  Ignored when ``evalservice`` is
            injected (the injected service decides its own tiers).
    """

    strategy_name = "nasaic"

    def __init__(
        self,
        workload: Workload,
        *,
        allocation: AllocationSpace | None = None,
        cost_model: CostModel | None = None,
        surrogate: AccuracySurrogate | None = None,
        config: NASAICConfig | None = None,
        evalservice: EvalService | None = None,
        store: "EvalStore | None" = None,
    ) -> None:
        self.allocation = allocation or AllocationSpace()
        self.config = config or NASAICConfig()
        self.cost_model = cost_model or CostModel()
        if self.config.calibrate_bounds:
            bounds = calibrate_penalty_bounds(workload, self.cost_model,
                                              self.allocation)
            workload = workload.with_specs(workload.specs, bounds=bounds)
        self.workload = workload
        if surrogate is None:
            surrogate = default_surrogate(
                [task.space for task in workload.tasks])
        self.surrogate = surrogate
        self.trainer = SurrogateTrainer(surrogate)
        self.evaluator = Evaluator(workload, self.cost_model, self.trainer,
                                   rho=self.config.rho)
        if evalservice is None:
            self.evalservice = EvalService(
                self.evaluator, cache_size=self.config.cache_size,
                workers=self.config.eval_workers, store=store)
            self._owns_service = True
        else:
            verify_injected_service(evalservice, workload,
                                    self.cost_model.params,
                                    self.config.rho)
            self.evalservice = evalservice
            self._owns_service = False
        self.space = JointSearchSpace(workload, self.allocation)
        master = new_rng(self.config.seed)
        self._init_rng = spawn_rng(master, 0)
        self._sample_rng = spawn_rng(master, 1)
        self.controller = RNNController(
            self.space.decisions, self.config.controller,
            rng=self._init_rng)
        self._joint_updates = ReinforceTrainer(self.controller,
                                               self.config.reinforce)
        self._hw_updates = ReinforceTrainer(self.controller,
                                            self.config.reinforce)
        self._pending_joint: list = []
        # -- run state (one trajectory per instance) -------------------
        self._result = SearchResult(name=f"NASAIC[{self.workload.name}]")
        self._episode = 0
        self._target_episodes: int | None = None
        self._pending_round: tuple | None = None

    # ------------------------------------------------------------------
    # SearchStrategy protocol (one round = one episode)
    # ------------------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        """Episodes a complete run executes (run-arg override wins)."""
        return self._target_episodes or self.config.episodes

    def propose(self, k: int | None = None) -> list:
        """Sample one episode's candidates: the joint design plus the
        ``phi`` hardware-only designs (SA/SH switch schedule of §IV-②).

        Everything is sampled before anything is priced — the controller
        is only updated in :meth:`observe`, so batching the pricing
        changes neither the RNG stream nor any controller update.  ``k``
        is ignored: the episode structure is fixed.
        """
        # -- joint step (SA = SH = 1) ----------------------------------
        joint_sample = self.controller.sample(
            self._sample_rng, mask_fn=self.space.mask_for)
        joint = self.space.decode(joint_sample.actions)
        # -- hardware-only steps (SA = 0, SH = 1) ----------------------
        forced = {pos: joint_sample.actions[pos]
                  for pos in self.space.arch_positions}
        hw_samples = [
            self.controller.sample(
                self._sample_rng, mask_fn=self.space.mask_for,
                forced_actions=forced)
            for _ in range(self.config.hw_steps)]
        self._pending_round = (joint_sample, joint, hw_samples)
        return [(joint.networks, joint.accelerator)] + [
            (joint.networks, self.space.decode(sample.actions).accelerator)
            for sample in hw_samples]

    def observe(self, evaluations) -> RoundLog:
        """Consume the episode's priced designs: policy updates, early
        pruning, the training path and the episode record."""
        assert self._pending_round is not None, "observe() before propose()"
        joint_sample, joint, hw_samples = self._pending_round
        self._pending_round = None
        rho = self.config.rho
        result = self._result
        best_hw: HardwareEvaluation = evaluations[0]
        hw_batch = []
        for hw_sample, hw_eval in zip(hw_samples, evaluations[1:]):
            hw_batch.append((hw_sample, -rho * hw_eval.penalty))
            if self._better_hw(hw_eval, best_hw):
                best_hw = hw_eval
        if hw_batch:
            self._hw_updates.apply_episodes(hw_batch)
        # -- training path with early pruning --------------------------
        trained = (best_hw.penalty == 0.0
                   or not self.config.prune_infeasible)
        if trained:
            accuracies = self.evaluator.train_networks(joint.networks)
            weighted = weighted_normalised_accuracy(self.workload,
                                                    accuracies)
        else:
            self.trainer.skip_training()
            accuracies = ()
            weighted = 0.0
        reward = episode_reward(weighted, best_hw.penalty, rho)
        self._pending_joint.append((joint_sample, reward))
        if len(self._pending_joint) >= self.config.joint_batch:
            self._joint_updates.apply_episodes(self._pending_joint)
            self._pending_joint = []
        # -- bookkeeping ------------------------------------------------
        solution = None
        if trained:
            solution = ExploredSolution(
                networks=joint.networks,
                accelerator=best_hw.accelerator,
                latency_cycles=best_hw.latency_cycles,
                energy_nj=best_hw.energy_nj,
                area_um2=best_hw.area_um2,
                feasible=best_hw.feasible,
                accuracies=accuracies,
                weighted_accuracy=weighted,
            )
            result.record(solution)
        record = EpisodeRecord(
            episode=self._episode,
            solution=solution,
            reward=reward,
            penalty=best_hw.penalty,
            trained=trained,
            hardware_steps=self.config.hw_steps,
        )
        result.episodes.append(record)
        self._episode += 1
        best = (f"{result.best.weighted_accuracy:.4f}"
                if result.best else "none")
        return RoundLog(
            record.episode,
            f"episode {self._episode}/{self.total_rounds} "
            f"reward={record.reward:+.3f} best={best}")

    def finish(self) -> SearchResult:
        """Assemble the run record (the driver absorbs eval stats)."""
        result = self._result
        result.trainings_run = self.trainer.trainings_run
        result.trainings_skipped = self.trainer.trainings_skipped
        return result

    def state(self) -> dict:
        """Snapshot every mutable piece of run state (see
        :meth:`repro.core.driver.SearchStrategy.state`)."""
        return {
            "episode": self._episode,
            "target_episodes": self._target_episodes,
            "controller_params": self.controller.clone_params(),
            "joint_updates": self._joint_updates.state(),
            "hw_updates": self._hw_updates.state(),
            "sample_rng": rng_state(self._sample_rng),
            "pending_joint": list(self._pending_joint),
            "result": self._result,
            "trainer": self.trainer.state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot (resume support)."""
        self._episode = state["episode"]
        self._target_episodes = state["target_episodes"]
        self.controller.load_params(state["controller_params"])
        self._joint_updates.load_state(state["joint_updates"])
        self._hw_updates.load_state(state["hw_updates"])
        self._sample_rng = restore_rng(state["sample_rng"])
        self._pending_joint = [
            (self._realias(sample), reward)
            for sample, reward in state["pending_joint"]]
        self._result = state["result"]
        self.trainer.load_state(state["trainer"])
        self._pending_round = None

    def _realias(self, sample):
        """Re-bind a restored sample's input caches to the live weights.

        A sampled trajectory's per-step input ``x`` is a *view* of the
        controller's parameters (``x0`` or an embedding row), so a
        joint-batch flush backpropagates through the weights as of
        flush time — mutated in place by every policy update since the
        sample was drawn.  Serialisation freezes those views into
        copies; re-aliasing them to the restored parameter arrays makes
        the resumed flush use exactly the values the uninterrupted run
        would, keeping the trajectory bit-identical.
        """
        params = self.controller.params
        for t, step in enumerate(sample.steps):
            if t == 0:
                step.x = params["x0"]
            else:
                prev = sample.steps[t - 1].action
                step.x = params[f"emb{t - 1}"][prev]
        return sample

    # ------------------------------------------------------------------
    # Main loop (driver facade)
    # ------------------------------------------------------------------
    def run(self, episodes: int | None = None,
            *, progress_every: int | None = None,
            checkpoint_path: str | Path | None = None,
            checkpoint_every: int = 0,
            resume_from: str | Path | None = None) -> SearchResult:
        """Run the search and return the full exploration record.

        One trajectory per instance: the run state lives on the search
        object, so ``run`` continues where a previous (partial) run or a
        restored checkpoint left off.  ``resume_from`` restores a
        checkpoint written by a previous process first; the episode
        budget of the resumed run must match.
        """
        if episodes:
            self._target_episodes = episodes
        driver = SearchDriver(
            self, self.evalservice,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            progress_every=progress_every)
        if resume_from is not None:
            driver.restore(resume_from)
        return driver.run()

    def close(self) -> None:
        """Release evaluation-service resources (worker pool, if any).

        Only needed with ``eval_workers > 1``; use the search as a
        context manager to get it automatically.  Injected (shared)
        services are left alive — their owner closes them.
        """
        if self._owns_service:
            self.evalservice.close()

    def __enter__(self) -> "NASAIC":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _better_hw(candidate: HardwareEvaluation,
                   incumbent: HardwareEvaluation) -> bool:
        """Prefer lower penalty, then lower energy, then lower latency."""
        return ((candidate.penalty, candidate.energy_nj,
                 candidate.latency_cycles)
                < (incumbent.penalty, incumbent.energy_nj,
                   incumbent.latency_cycles))

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def greedy_solution(self) -> ExploredSolution:
        """Evaluate the controller's current argmax sample."""
        rng = new_rng(0)  # unused under greedy decoding
        sample = self.controller.sample(
            rng, mask_fn=self.space.mask_for, greedy=True)
        joint = self.space.decode(sample.actions)
        hardware = self.evalservice.evaluate_hardware(joint.networks,
                                                      joint.accelerator)
        evaluation = self.evaluator.evaluate(joint.networks,
                                             joint.accelerator,
                                             hardware=hardware)
        return ExploredSolution(
            networks=joint.networks,
            accelerator=joint.accelerator,
            latency_cycles=evaluation.hardware.latency_cycles,
            energy_nj=evaluation.hardware.energy_nj,
            area_um2=evaluation.hardware.area_um2,
            feasible=evaluation.feasible,
            accuracies=evaluation.accuracies,
            weighted_accuracy=evaluation.weighted_accuracy,
        )
