"""Reinforcement-learning RNN controller (numpy, from scratch).

The paper's controller (§IV-①, Fig. 5) is a recurrent network that emits
one categorical token per decision — architecture hyperparameters for
every DNN followed by design parameters for every sub-accelerator — and
is trained with the Monte-Carlo policy gradient of Eq. 1.  No deep
learning framework is available here, so the LSTM, the per-decision
softmax heads and full backpropagation-through-time are implemented
directly on numpy arrays (and verified against finite differences in the
test suite).

Design notes:

- each decision owns an output head (vocabularies differ per step) and an
  embedding table feeding the *next* step's input, as in Zoph & Le [1];
- option masks (from the budget-aware joint space) are applied to the
  logits before the softmax, so infeasible allocations have zero
  probability and zero gradient;
- the optimizer selector's ``SA``/``SH`` switches are realised by
  *forcing* the corresponding steps' actions and giving them zero weight
  in the gradient (see :mod:`repro.core.reinforce`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.choices import Decision
from repro.utils.rng import new_rng

__all__ = ["ControllerConfig", "ControllerSample", "RNNController"]

MaskFn = Callable[[int, list[int]], np.ndarray | None]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller hyperparameters.

    Attributes:
        hidden_size: LSTM state width.
        embed_size: Input embedding width.
        temperature: Softmax temperature (>1 flattens early exploration).
        init_scale: Uniform init half-width for all weights.
    """

    hidden_size: int = 64
    embed_size: int = 24
    temperature: float = 1.0
    init_scale: float = 0.08

    def __post_init__(self) -> None:
        if self.hidden_size < 1 or self.embed_size < 1:
            raise ValueError("hidden_size/embed_size must be positive")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.init_scale <= 0:
            raise ValueError("init_scale must be positive")


@dataclass
class _StepCache:
    """Everything the backward pass needs for one step."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gate_i: np.ndarray
    gate_f: np.ndarray
    gate_g: np.ndarray
    gate_o: np.ndarray
    c: np.ndarray
    h: np.ndarray
    tanh_c: np.ndarray
    probs: np.ndarray
    mask: np.ndarray | None
    action: int
    forced: bool


@dataclass
class ControllerSample:
    """One sampled trajectory with its forward caches.

    Attributes:
        actions: Sampled (or forced) option index per decision.
        log_probs: ``log pi(a_t | a_<t)`` per step.
        entropies: Policy entropy per step.
        steps: Forward caches for backpropagation.
    """

    actions: tuple[int, ...]
    log_probs: np.ndarray
    entropies: np.ndarray
    steps: list[_StepCache] = field(repr=False, default_factory=list)

    @property
    def total_log_prob(self) -> float:
        return float(self.log_probs.sum())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _masked_softmax(logits: np.ndarray,
                    mask: np.ndarray | None) -> np.ndarray:
    if mask is not None:
        if mask.shape != logits.shape:
            raise ValueError(
                f"mask shape {mask.shape} != logits shape {logits.shape}")
        if not mask.any():
            raise ValueError("mask disallows every option")
        logits = np.where(mask, logits, -np.inf)
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class RNNController:
    """LSTM policy over a fixed decision sequence.

    Args:
        decisions: The joint space's decision list (order defines the
            token sequence).
        config: Network hyperparameters.
        rng: Generator used for weight initialisation.  Defaults to the
            fixed seed 0 — never OS entropy — per the seeding contract
            of :mod:`repro.utils.rng`; searches always pass a sub-stream
            of their master seed instead.
    """

    def __init__(self, decisions: tuple[Decision, ...] | list[Decision],
                 config: ControllerConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.decisions = tuple(decisions)
        if not self.decisions:
            raise ValueError("controller needs at least one decision")
        self.config = config or ControllerConfig()
        if rng is None:
            rng = new_rng(0)
        h, e = self.config.hidden_size, self.config.embed_size
        s = self.config.init_scale

        def init(*shape: int) -> np.ndarray:
            return rng.uniform(-s, s, size=shape)

        self.params: dict[str, np.ndarray] = {
            "x0": init(e),
            "Wx": init(e, 4 * h),
            "Wh": init(h, 4 * h),
            "b": np.zeros(4 * h),
        }
        for idx, decision in enumerate(self.decisions):
            self.params[f"emb{idx}"] = init(decision.num_options, e)
            self.params[f"Wout{idx}"] = init(h, decision.num_options)
            self.params[f"bout{idx}"] = np.zeros(decision.num_options)

    # ------------------------------------------------------------------
    # Forward / sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        rng: np.random.Generator,
        *,
        mask_fn: MaskFn | None = None,
        forced_actions: dict[int, int] | None = None,
        greedy: bool = False,
    ) -> ControllerSample:
        """Sample one trajectory.

        Args:
            rng: Sampling randomness.
            mask_fn: ``(position, actions_so_far) -> option mask or None``;
                typically :meth:`JointSearchSpace.mask_for`.
            forced_actions: Positions whose action is pinned (teacher
                forcing) — the mechanism behind the ``SA``/``SH`` switches.
            greedy: Take the argmax instead of sampling (used to read out
                the controller's current best guess).
        """
        forced_actions = forced_actions or {}
        h_size = self.config.hidden_size
        h = np.zeros(h_size)
        c = np.zeros(h_size)
        x = self.params["x0"]
        actions: list[int] = []
        log_probs = np.zeros(len(self.decisions))
        entropies = np.zeros(len(self.decisions))
        steps: list[_StepCache] = []
        for t, decision in enumerate(self.decisions):
            z = (x @ self.params["Wx"] + h @ self.params["Wh"]
                 + self.params["b"])
            gate_i = _sigmoid(z[:h_size])
            gate_f = _sigmoid(z[h_size:2 * h_size])
            gate_g = np.tanh(z[2 * h_size:3 * h_size])
            gate_o = _sigmoid(z[3 * h_size:])
            c_new = gate_f * c + gate_i * gate_g
            tanh_c = np.tanh(c_new)
            h_new = gate_o * tanh_c
            logits = ((h_new @ self.params[f"Wout{t}"]
                       + self.params[f"bout{t}"])
                      / self.config.temperature)
            mask = mask_fn(t, actions) if mask_fn is not None else None
            probs = _masked_softmax(logits, mask)
            if t in forced_actions:
                action = int(forced_actions[t])
                if not 0 <= action < decision.num_options:
                    raise ValueError(
                        f"forced action {action} out of range for "
                        f"{decision.name!r}")
                if probs[action] <= 0.0:
                    raise ValueError(
                        f"forced action {action} for {decision.name!r} is "
                        "masked out")
            elif greedy:
                action = int(np.argmax(probs))
            else:
                action = int(rng.choice(decision.num_options, p=probs))
            log_probs[t] = float(np.log(probs[action]))
            safe_log = np.where(probs > 0, np.log(
                np.where(probs > 0, probs, 1.0)), 0.0)
            entropies[t] = float(-(probs * safe_log).sum())
            steps.append(_StepCache(
                x=x, h_prev=h, c_prev=c, gate_i=gate_i, gate_f=gate_f,
                gate_g=gate_g, gate_o=gate_o, c=c_new, h=h_new,
                tanh_c=tanh_c, probs=probs, mask=mask, action=action,
                forced=t in forced_actions))
            actions.append(action)
            h, c = h_new, c_new
            x = self.params[f"emb{t}"][action]
        return ControllerSample(
            actions=tuple(actions), log_probs=log_probs,
            entropies=entropies, steps=steps)

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(
        self,
        sample: ControllerSample,
        logprob_weights: np.ndarray,
        entropy_weights: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Gradients of ``sum_t w_t log pi(a_t) + beta_t H_t`` w.r.t. params.

        The caller chooses ``w_t`` to implement Eq. 1 (discounted
        advantage, zero on forced steps); ``beta_t`` adds an optional
        entropy bonus that keeps exploration alive.
        """
        t_count = len(self.decisions)
        if logprob_weights.shape != (t_count,):
            raise ValueError(
                f"expected {t_count} log-prob weights, got "
                f"{logprob_weights.shape}")
        if entropy_weights is None:
            entropy_weights = np.zeros(t_count)
        h_size = self.config.hidden_size
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        dh_next = np.zeros(h_size)
        dc_next = np.zeros(h_size)
        for t in range(t_count - 1, -1, -1):
            step = sample.steps[t]
            probs = step.probs
            onehot = np.zeros_like(probs)
            onehot[step.action] = 1.0
            # d/dlogits of log p[a]:  onehot - p   (ascent direction)
            g_logits = logprob_weights[t] * (onehot - probs)
            beta = entropy_weights[t]
            if beta != 0.0:
                safe_log = np.where(probs > 0, np.log(
                    np.where(probs > 0, probs, 1.0)), 0.0)
                entropy = -(probs * safe_log).sum()
                g_logits += beta * (-probs * (safe_log + entropy))
            g_logits = g_logits / self.config.temperature
            grads[f"Wout{t}"] += np.outer(step.h, g_logits)
            grads[f"bout{t}"] += g_logits
            dh = g_logits @ self.params[f"Wout{t}"].T + dh_next
            # Input at step t+1 was emb[t][action_t]; its gradient arrives
            # via dx of step t+1, handled below when we compute dx.
            d_o = dh * step.tanh_c
            dc = dh * step.gate_o * (1.0 - step.tanh_c ** 2) + dc_next
            d_i = dc * step.gate_g
            d_g = dc * step.gate_i
            d_f = dc * step.c_prev
            dc_next = dc * step.gate_f
            dz = np.concatenate([
                d_i * step.gate_i * (1.0 - step.gate_i),
                d_f * step.gate_f * (1.0 - step.gate_f),
                d_g * (1.0 - step.gate_g ** 2),
                d_o * step.gate_o * (1.0 - step.gate_o),
            ])
            grads["Wx"] += np.outer(step.x, dz)
            grads["Wh"] += np.outer(step.h_prev, dz)
            grads["b"] += dz
            dx = dz @ self.params["Wx"].T
            if t == 0:
                grads["x0"] += dx
            else:
                prev_action = sample.steps[t - 1].action
                grads[f"emb{t - 1}"][prev_action] += dx
            dh_next = dz @ self.params["Wh"].T
        return grads

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(v.size for v in self.params.values())

    def clone_params(self) -> dict[str, np.ndarray]:
        """Deep copy of the current parameters (for tests/checkpoints)."""
        return {k: v.copy() for k, v in self.params.items()}

    def load_params(self, params: dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`clone_params`."""
        if set(params) != set(self.params):
            raise ValueError("parameter keys do not match this controller")
        for key, value in params.items():
            if value.shape != self.params[key].shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} vs "
                    f"{self.params[key].shape}")
            self.params[key] = value.copy()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a checkpoint (.npz) of the controller's parameters.

        The decision structure is stored alongside the weights so
        :meth:`load` can verify the checkpoint matches the controller it
        is loaded into.
        """
        signature = np.array(
            [f"{d.name}:{d.num_options}:{d.kind}" for d in self.decisions])
        np.savez(path, __signature__=signature, **self.params)

    def load(self, path) -> None:
        """Restore a checkpoint written by :meth:`save`.

        Raises:
            ValueError: If the checkpoint was written for a controller
                with a different decision structure.
        """
        with np.load(path, allow_pickle=False) as data:
            signature = list(data["__signature__"])
            expected = [f"{d.name}:{d.num_options}:{d.kind}"
                        for d in self.decisions]
            if signature != expected:
                raise ValueError(
                    "checkpoint decision structure does not match this "
                    "controller")
            self.load_params({k: data[k] for k in data.files
                              if k != "__signature__"})
