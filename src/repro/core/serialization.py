"""Serialisation of search results (JSON) and run checkpoints (pickle).

Lives in ``repro.core`` (not ``repro.utils``) because it consumes the
search-result types; ``repro.utils`` sits below every other subpackage.

Three artefact families with different contracts:

- **Run/campaign JSON** (:func:`save_result`, the campaign runner's
  consolidated output): plain dictionaries — genotypes, accelerator
  triples, metrics — enough to reproduce every table row without
  pickling live objects.  Diff-friendly, cross-version stable.
- **Checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`):
  written by :class:`repro.core.driver.SearchDriver` mid-run so an
  interrupted search can resume *bit-identically*.  They must round-trip
  controller weight arrays, RMSProp moments, RNG bit-generator states
  and cached :class:`~repro.core.evaluator.HardwareEvaluation` records
  exactly, so they use pickle — same trade-off as ``torch.save``.  A
  checkpoint is a versioned envelope::

      {"format": "repro-checkpoint", "version": 1,
       "strategy_name": ..., "round": ..., "total_rounds": ...,
       "context_salt": ...,        # evaluation context of the service
       "store_path": ...,          # persistent store in use (or None)
       "stats_start": ...,         # driver's stats baseline (delta absorption)
       "strategy_state": {...},    # SearchStrategy.state()
       "service_state": {...}}     # EvalService.state_snapshot()

  Only load checkpoints you wrote yourself (standard pickle caveat).
- **Store offset indexes** (:func:`save_store_index` /
  :func:`load_store_index`): the ``<store>.idx`` sidecar that lets
  :class:`repro.core.evalstore.EvalStore` open without unpickling every
  record.  The sidecar is a pure *cache* of the store file — it is
  stamped with the store's covered byte count and a hash of the covered
  tail, and a store open whose stamp does not match rebuilds the index
  from the records instead of trusting it.  Layout::

      repro-evalstore-idx v1\\n
      u64 header_len, pickled header     # format/version/covered_bytes/
                                         # tail_hash/count/shadowed
      u64 memo_len, pickled memo map     # params digest -> [offsets]
      zero padding to an 8-byte boundary
      count * u64 bucket hashes          # sorted (hash, offset) pairs,
      count * u64 record offsets         # little-endian, column-major

  The two u64 columns are written raw (not pickled) and 8-byte aligned
  so a reader can ``mmap`` them and binary-search without
  materialising the index in memory; writes go through
  :func:`durable_replace` so a crashed rebuild can never leave a torn
  sidecar beside a good store.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
from pathlib import Path
from typing import Any

from repro.core.results import ExploredSolution, SearchResult

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_VERSION",
           "STORE_INDEX_FORMAT", "STORE_INDEX_VERSION", "durable_append",
           "durable_replace", "load_checkpoint", "load_result",
           "load_store_index", "result_to_dict", "save_checkpoint",
           "save_result", "save_store_index", "solution_to_dict",
           "store_index_path"]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

STORE_INDEX_FORMAT = "repro-evalstore-index"
STORE_INDEX_VERSION = 1
_INDEX_MAGIC = b"repro-evalstore-idx v1\n"
_U64 = struct.Struct("<Q")


# ----------------------------------------------------------------------
# Durable writes
# ----------------------------------------------------------------------
def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported).

    After ``os.replace`` the *file* contents are durable only once the
    containing directory's entry is too; platforms that cannot fsync a
    directory (e.g. Windows) simply skip this step.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir handles
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def durable_replace(path: str | Path, blob: bytes) -> Path:
    """Crash-safe atomic write of ``blob`` to ``path``.

    The bytes go to a sibling ``.tmp`` file which is fsynced *before*
    ``os.replace`` — without the fsync a power loss shortly after the
    replace can leave a zero-length (yet valid-looking) file, because
    the rename may reach disk before the data does.  The temp file is
    removed even when the write or replace fails, so a crash never
    strands a stale ``.tmp`` beside the target, and the directory entry
    is fsynced after the replace.  Used by checkpoints; the evaluation
    store reuses :func:`durable_append` for the same guarantee on its
    append-only file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    _fsync_directory(path.parent)
    return path


def durable_append(handle, blob: bytes) -> None:
    """Append ``blob`` to an open binary file handle and fsync it.

    The companion of :func:`durable_replace` for append-only artefacts
    (the evaluation store): once this returns, the appended record
    survives a crash or power loss.
    """
    handle.write(blob)
    handle.flush()
    os.fsync(handle.fileno())


def solution_to_dict(solution: ExploredSolution) -> dict[str, Any]:
    """Flatten one solution into JSON-safe primitives."""
    return {
        "networks": [
            {
                "backbone": net.backbone,
                "dataset": net.dataset,
                "genotype": list(net.genotype),
                "macs": net.total_macs,
                "params": net.total_params,
            }
            for net in solution.networks
        ],
        "accelerator": [
            {
                "dataflow": sub.dataflow.value,
                "pes": sub.num_pes,
                "bandwidth_gbps": sub.bandwidth_gbps,
            }
            for sub in solution.accelerator.active_subaccs
        ],
        "latency_cycles": solution.latency_cycles,
        "energy_nj": solution.energy_nj,
        "area_um2": solution.area_um2,
        "feasible": solution.feasible,
        "accuracies": list(solution.accuracies),
        "weighted_accuracy": solution.weighted_accuracy,
    }


def result_to_dict(result: SearchResult) -> dict[str, Any]:
    """Flatten a whole search run (explored set + accounting).

    The ``pricing`` block mirrors the run's uncached-pricing counters
    (cross-design cost-table memo reuse and HAP move pricing — certified
    prunes, delta-resumes, simulation steps skipped) plus the fault
    counters (``degraded``, retries/reconnects, pool restarts), so JSON
    outputs track fast-path effectiveness and fault exposure per run.
    """
    return {
        "name": result.name,
        "best": (solution_to_dict(result.best)
                 if result.best is not None else None),
        "explored": [solution_to_dict(s) for s in result.explored],
        "trainings_run": result.trainings_run,
        "trainings_skipped": result.trainings_skipped,
        "hardware_evaluations": result.hardware_evaluations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "eval_seconds": result.eval_seconds,
        "num_feasible": len(result.feasible_solutions),
        "pricing": {
            "store_hits": result.store_hits,
            "cost_memo_hits": result.cost_memo_hits,
            "cost_memo_misses": result.cost_memo_misses,
            "hap_moves_priced": result.hap_moves_priced,
            "hap_moves_pruned": result.hap_moves_pruned,
            "hap_moves_resumed": result.hap_moves_resumed,
            "hap_steps_saved": result.hap_steps_saved,
            "hap_steps_replayed": result.hap_steps_replayed,
            "hap_batched_rounds": result.hap_batched_rounds,
            "hap_batch_width": result.hap_batch_width,
            "degraded": result.degraded,
            "retries": result.pricing_retries,
            "reconnects": result.pricing_reconnects,
            "pool_restarts": result.pool_restarts,
        },
    }


def save_result(result: SearchResult, path: str | Path) -> Path:
    """Write a search run to ``path`` as indented JSON (atomic: an
    interrupted write never leaves a truncated file behind)."""
    blob = json.dumps(result_to_dict(result), indent=2).encode("utf-8")
    return durable_replace(path, blob)


def load_result(path: str | Path) -> dict[str, Any]:
    """Read back a serialised run as a plain dictionary."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(path: str | Path, payload: dict[str, Any]) -> Path:
    """Atomically write a mid-run checkpoint.

    The payload is pickled immediately (snapshot semantics: later
    mutations of live objects cannot leak into the file) and written via
    :func:`durable_replace` — fsynced temp file, atomic replace, temp
    cleanup, directory fsync — so neither a crash during checkpointing
    nor a power loss right after it can corrupt or zero out the
    previous checkpoint.
    """
    record = {"format": CHECKPOINT_FORMAT,
              "version": CHECKPOINT_VERSION, **payload}
    blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return durable_replace(path, blob)


# ----------------------------------------------------------------------
# Evaluation-store offset indexes
# ----------------------------------------------------------------------
def store_index_path(store_path: str | Path) -> Path:
    """The ``<store>.idx`` sidecar path for a store file."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".idx")


def save_store_index(path: str | Path, *, covered_bytes: int,
                     tail_hash: str, shadowed: int, hashes: bytes,
                     offsets: bytes, memo: dict) -> Path:
    """Durably (re)write a store offset-index sidecar.

    ``hashes``/``offsets`` are the raw little-endian u64 columns of the
    ``(bucket hash, record offset)`` table, already sorted by
    ``(hash, offset)``; ``memo`` maps params digests to the offsets of
    their memo records.  ``covered_bytes``/``tail_hash`` stamp exactly
    which store-file prefix the index describes — a reader whose store
    does not match the stamp must rebuild, never trust the sidecar.
    ``shadowed`` carries the store's count of digest-shadowed duplicate
    records (compaction fodder) across sessions.
    """
    if len(hashes) != len(offsets) or len(hashes) % 8:
        raise ValueError("hash/offset columns must be equal-length "
                         "multiples of 8 bytes")
    header = {"format": STORE_INDEX_FORMAT,
              "version": STORE_INDEX_VERSION,
              "covered_bytes": int(covered_bytes),
              "tail_hash": str(tail_hash),
              "count": len(hashes) // 8,
              "shadowed": int(shadowed)}
    header_blob = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    memo_blob = pickle.dumps(memo, protocol=pickle.HIGHEST_PROTOCOL)
    prefix_len = (len(_INDEX_MAGIC) + 2 * _U64.size + len(header_blob)
                  + len(memo_blob))
    # Pad so the u64 columns start 8-byte aligned: numpy's binary
    # search on an unaligned memmap falls off its fast path (~100x).
    pad = -prefix_len % 8
    blob = b"".join([_INDEX_MAGIC,
                     _U64.pack(len(header_blob)), header_blob,
                     _U64.pack(len(memo_blob)), memo_blob,
                     b"\0" * pad, hashes, offsets])
    return durable_replace(path, blob)


def load_store_index(path: str | Path) -> dict[str, Any] | None:
    """Read a store offset-index sidecar written by
    :func:`save_store_index`.

    Returns ``None`` for a missing, truncated, malformed or
    wrong-version sidecar — the index is a cache, so every failure mode
    means "rebuild from the store file", never an error.  The u64
    columns are *not* materialised; the caller gets their byte offset
    (``arrays_offset``) and row ``count`` and maps them lazily.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            if handle.read(len(_INDEX_MAGIC)) != _INDEX_MAGIC:
                return None
            (header_len,) = _U64.unpack(handle.read(_U64.size))
            header = pickle.loads(handle.read(header_len))
            if (not isinstance(header, dict)
                    or header.get("format") != STORE_INDEX_FORMAT
                    or header.get("version") != STORE_INDEX_VERSION):
                return None
            (memo_len,) = _U64.unpack(handle.read(_U64.size))
            memo = pickle.loads(handle.read(memo_len))
            arrays_offset = handle.tell()
            arrays_offset += -arrays_offset % 8  # alignment padding
            count = int(header["count"])
            if count < 0 or not isinstance(memo, dict):
                return None
            if (os.fstat(handle.fileno()).st_size
                    != arrays_offset + 16 * count):
                return None
            return {"covered_bytes": int(header["covered_bytes"]),
                    "tail_hash": str(header["tail_hash"]),
                    "shadowed": int(header.get("shadowed", 0)),
                    "count": count,
                    "memo": memo,
                    "arrays_offset": arrays_offset}
    except Exception:
        return None


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read back a checkpoint written by :func:`save_checkpoint`.

    Raises:
        ValueError: If the file is not a repro checkpoint or was written
            by an incompatible checkpoint-format version.
    """
    record = pickle.loads(Path(path).read_bytes())
    if (not isinstance(record, dict)
            or record.get("format") != CHECKPOINT_FORMAT):
        raise ValueError(f"{path} is not a repro run checkpoint")
    if record.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {record.get('version')!r} is not "
            f"supported (expected {CHECKPOINT_VERSION})")
    return record
