"""JSON serialisation of search results.

Lives in ``repro.core`` (not ``repro.utils``) because it consumes the
search-result types; ``repro.utils`` sits below every other subpackage.

Experiment harnesses persist their outcomes so EXPERIMENTS.md numbers
can be regenerated and diffed.  Solutions serialise to plain dictionaries
(genotypes, accelerator triples, metrics) — enough to reproduce every
table row without pickling live objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.results import ExploredSolution, SearchResult

__all__ = ["load_result", "result_to_dict", "save_result",
           "solution_to_dict"]


def solution_to_dict(solution: ExploredSolution) -> dict[str, Any]:
    """Flatten one solution into JSON-safe primitives."""
    return {
        "networks": [
            {
                "backbone": net.backbone,
                "dataset": net.dataset,
                "genotype": list(net.genotype),
                "macs": net.total_macs,
                "params": net.total_params,
            }
            for net in solution.networks
        ],
        "accelerator": [
            {
                "dataflow": sub.dataflow.value,
                "pes": sub.num_pes,
                "bandwidth_gbps": sub.bandwidth_gbps,
            }
            for sub in solution.accelerator.active_subaccs
        ],
        "latency_cycles": solution.latency_cycles,
        "energy_nj": solution.energy_nj,
        "area_um2": solution.area_um2,
        "feasible": solution.feasible,
        "accuracies": list(solution.accuracies),
        "weighted_accuracy": solution.weighted_accuracy,
    }


def result_to_dict(result: SearchResult) -> dict[str, Any]:
    """Flatten a whole search run (explored set + accounting).

    The ``pricing`` block mirrors the run's uncached-pricing counters
    (cross-design cost-table memo reuse and HAP move pricing — certified
    prunes, delta-resumes, simulation steps skipped), so JSON outputs
    track the fast-path effectiveness per run.
    """
    return {
        "name": result.name,
        "best": (solution_to_dict(result.best)
                 if result.best is not None else None),
        "explored": [solution_to_dict(s) for s in result.explored],
        "trainings_run": result.trainings_run,
        "trainings_skipped": result.trainings_skipped,
        "hardware_evaluations": result.hardware_evaluations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "eval_seconds": result.eval_seconds,
        "num_feasible": len(result.feasible_solutions),
        "pricing": {
            "cost_memo_hits": result.cost_memo_hits,
            "cost_memo_misses": result.cost_memo_misses,
            "hap_moves_priced": result.hap_moves_priced,
            "hap_moves_pruned": result.hap_moves_pruned,
            "hap_moves_resumed": result.hap_moves_resumed,
            "hap_steps_saved": result.hap_steps_saved,
            "hap_steps_replayed": result.hap_steps_replayed,
        },
    }


def save_result(result: SearchResult, path: str | Path) -> Path:
    """Write a search run to ``path`` as indented JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2),
                    encoding="utf-8")
    return path


def load_result(path: str | Path) -> dict[str, Any]:
    """Read back a serialised run as a plain dictionary."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
