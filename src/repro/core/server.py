"""Pricing-as-a-service: the async multi-client evaluation daemon.

The co-exploration loop is bottlenecked by hardware pricing, not the
optimiser — the observation behind deephyper's asynchronous search and
Apollo's shared transferable evaluation data.  This module turns the
pricing tier into a long-running service (``repro serve``) that many
concurrent search clients reach over a local Unix socket, sharing one
LRU + persistent store + cost-model memo instead of each warming a
private cache from zero.

Architecture (one asyncio loop, two single-thread executors):

- **Hosted services.**  Each client ``hello`` ships its evaluation
  context (workload, cost parameters, rho); the server builds — or
  reuses — one :class:`~repro.core.evalservice.EvalService` per
  context salt, exactly like campaign sharing, so equal-context
  clients share one cache and differing contexts can never poison
  each other (entries are salt-namespaced).
- **Single compute thread.**  Evaluators are not thread-safe, so all
  miss computation runs on a one-thread executor; the event loop stays
  free to serve cache hits and accept connections while a miss prices.
  Cache/stats mutations happen only on the loop thread (executor
  callbacks), keeping the service single-threaded in effect.
- **Cross-client coalescing.**  An in-flight future map keyed by
  ``(salt, content key)``: when client B submits a design client A is
  currently pricing, B awaits A's future instead of recomputing —
  identical in-flight content keys are priced exactly once.
- **Single writer task.**  Computed misses are enqueued and drained by
  one task that appends to the store through a dedicated one-thread
  executor, so all store appends stay serialized — the same
  single-writer contract the store's ``flock`` enforces across
  processes, upheld inside the daemon by construction.
- **Graceful SIGTERM.**  Shutdown stops accepting, waits for in-flight
  pricing, drains the persist queue, flushes every hosted service's
  cost memo and releases the store writer lock — a ``kill`` never
  drops priced work.

Determinism: pricing is RNG-free, so a served evaluation is
bit-identical to an in-process one — the ``served`` oracle pair in
:mod:`repro.core.differential` and ``benchmarks/bench_serve.py`` gate
this continuously.
"""

from __future__ import annotations

import asyncio
import pickle
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.core.evalservice import (
    EvalService,
    design_content,
    evaluation_context_salt,
)
from repro.core.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.core.store import EvalStore
from repro.cost.model import CostModel

__all__ = ["PricingServer", "serve", "serve_in_thread"]


class PricingServer:
    """One pricing daemon: socket, hosted services, store, writer task.

    Args:
        socket_path: Unix socket to listen on (created on start; a
            stale file from a dead daemon is replaced).
        store_path: Optional persistent evaluation store backing every
            hosted service.  Opened for writing on start — the store's
            writer lock makes a second daemon on the same store fail
            loudly before it can touch the socket.
        cache_size: LRU capacity of each hosted service.
        max_frame_bytes: Protocol frame-size guard (tests shrink it).
    """

    def __init__(self, socket_path: str | Path, *,
                 store_path: str | Path | None = None,
                 cache_size: int = 4096,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.socket_path = Path(socket_path)
        self.store_path = (Path(store_path)
                           if store_path is not None else None)
        self.cache_size = cache_size
        self.max_frame_bytes = max_frame_bytes
        self.store: EvalStore | None = None
        #: context salt -> hosted service (inspectable in tests).
        self.services: dict[str, EvalService] = {}
        self.counters = {"connections": 0, "batches": 0, "computed": 0,
                         "coalesced": 0, "persisted": 0,
                         "persist_errors": 0}
        self._inflight: dict[tuple[str, tuple], asyncio.Future] = {}
        # Evaluations pickled once, served many times: the hit path of
        # a repeat-heavy trace is dominated by (re)pickling reply
        # objects, so replies are cached as blobs per (salt, key).
        self._reply_blobs: dict[tuple[str, tuple], bytes] = {}
        self._reply_blob_cap = 16384
        self._persist_queue: asyncio.Queue | None = None
        self._compute: ThreadPoolExecutor | None = None
        self._write: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writer_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the store, bind the socket, launch the writer task."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self.store_path is not None:
            # First thing: the writer lock.  A second daemon on the
            # same store dies here, before unlinking anyone's socket.
            self.store = EvalStore(self.store_path)
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute")
        self._write = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-write")
        self._persist_queue = asyncio.Queue()
        self._writer_task = self._loop.create_task(
            self._drain_persist_queue())
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)  # stale socket
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path))

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the graceful shutdown (main thread
        only — threads cannot install signal handlers)."""
        assert self._loop is not None, "call start() first"
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum,
                                          self._shutdown_event.set)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by ``serve_in_thread``)."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:  # loop already closed
            pass

    async def run_async(self) -> None:
        """Start, serve until the shutdown event fires, wind down."""
        await self.start()
        try:
            await self._shutdown_event.wait()
        finally:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful wind-down: no accepted connection loses priced
        work and nothing pending skips persistence."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        if self._persist_queue is not None:
            await self._persist_queue.join()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self.store is not None:
            for service in self.services.values():
                await self._loop.run_in_executor(self._write,
                                                 service.flush_store)
        if self._compute is not None:
            self._compute.shutdown(wait=True)
        if self._write is not None:
            self._write.shutdown(wait=True)
        if self.store is not None:
            self.store.close()
        self.socket_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _reply(self, writer: asyncio.StreamWriter,
                     payload: dict) -> None:
        writer.write(encode_frame(payload,
                                  max_bytes=self.max_frame_bytes))
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        service: EvalService | None = None
        # Connection-local design handles: entry i is the (key, pair)
        # this client first submitted as handle i, so its repeats ride
        # as ints instead of re-pickled kilobyte design objects.
        handles: list[tuple[tuple, tuple]] = []
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_bytes=self.max_frame_bytes)
                except (FrameError,
                        asyncio.IncompleteReadError) as exc:
                    # The stream cannot be trusted past a malformed
                    # frame: answer best-effort, then hang up.
                    await self._reply(writer,
                                      {"ok": False, "error": str(exc)})
                    return
                if request is None:
                    return  # clean disconnect between frames
                response = await self._dispatch(request, service,
                                                handles)
                if isinstance(response, tuple):  # hello binds a service
                    service, response = response
                await self._reply(writer, response)
                if response.get("shutdown"):
                    self._shutdown_event.set()
                    return
        except (ConnectionResetError, BrokenPipeError):
            # Client vanished mid-reply.  In-flight computations keep
            # running to completion (and persist) — other clients
            # coalesced onto them are unaffected.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request, service: EvalService | None,
                        handles: list):
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False,
                    "error": "malformed request (expected a dict "
                             "with an 'op' field)"}
        op = request["op"]
        if op == "hello":
            return self._handle_hello(request)
        if op == "ping":
            return {"ok": True, "version": PROTOCOL_VERSION}
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        if service is None:
            return {"ok": False,
                    "error": f"op {op!r} before a successful hello"}
        if op == "submit":
            return await self._handle_submit(service, request, handles)
        if op == "stats":
            return self._handle_stats(service)
        if op == "bump_generation":
            service.bump_generation()
            return {"ok": True}
        if op == "flush":
            flushed = await self._loop.run_in_executor(
                self._write, service.flush_store)
            return {"ok": True, "flushed": flushed}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_hello(self, request):
        version = request.get("version")
        if version != PROTOCOL_VERSION:
            return None, {
                "ok": False,
                "error": f"protocol version {version!r} is not "
                         f"supported (server speaks "
                         f"{PROTOCOL_VERSION})"}
        try:
            workload = request["workload"]
            params = request["cost_params"]
            rho = request["rho"]
            salt = evaluation_context_salt(workload, params, rho)
        except Exception as exc:
            return None, {"ok": False,
                          "error": f"bad hello payload: {exc}"}
        service = self.services.get(salt)
        if service is None:
            evaluator = Evaluator(workload, CostModel(params),
                                  trainer=None, rho=rho)
            service = EvalService(evaluator,
                                  cache_size=self.cache_size,
                                  store=self.store)
            self.services[salt] = service
        else:
            # Same accounting as campaign sharing: entries priced
            # before this client joined count as *shared* reuse.
            service.bump_generation()
        return service, {"ok": True, "salt": salt,
                         "version": PROTOCOL_VERSION}

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    async def _handle_submit(self, service: EvalService, request,
                             handles: list):
        entries = request.get("pairs")
        if not isinstance(entries, list):
            return {"ok": False, "error": "submit without a pairs list"}
        resolved: list[tuple[tuple, tuple, int]] = []
        try:
            for entry in entries:
                if isinstance(entry, int):
                    if not 0 <= entry < len(handles):
                        return {"ok": False, "id": request.get("id"),
                                "error": "unknown design handle "
                                         f"{entry} (this connection "
                                         f"issued {len(handles)})"}
                    key, pair = handles[entry]
                    resolved.append((key, pair, entry))
                else:
                    networks, accelerator = entry
                    pair = (networks, accelerator)
                    key = design_content(networks, accelerator)
                    handles.append((key, pair))
                    resolved.append((key, pair, len(handles) - 1))
        except Exception as exc:
            return {"ok": False, "id": request.get("id"),
                    "error": f"malformed design entry: {exc}"}
        self.counters["batches"] += 1
        service.stats.batches += 1
        salt = service.context_salt
        results: dict[tuple, object] = {}
        first_tier: dict[tuple, str] = {}
        awaited: dict[tuple, asyncio.Future] = {}
        for key, pair, _handle in resolved:
            if key in first_tier:
                # Intra-batch duplicate: the first occurrence answers
                # for all of them (counted as a hit, mirroring
                # EvalService.evaluate_many).
                service.stats.hits += 1
                continue
            evaluation, tier = service.lookup_tiers(key)
            if evaluation is not None:
                results[key] = evaluation
                first_tier[key] = tier
                continue
            inflight_key = (salt, key)
            pending = self._inflight.get(inflight_key)
            if pending is not None:
                # Another client is pricing this exact design right
                # now: one compute, many answers.
                awaited[key] = pending
                first_tier[key] = "coalesced"
                self.counters["coalesced"] += 1
                continue
            awaited[key] = self._spawn_compute(service, inflight_key,
                                               key, pair)
            first_tier[key] = "miss"
        miss_seconds = 0.0
        try:
            for key, future in awaited.items():
                evaluation, seconds = await future
                results[key] = evaluation
                if first_tier[key] == "miss":
                    miss_seconds += seconds
        except Exception as exc:
            return {"ok": False, "id": request.get("id"),
                    "error": f"pricing failed: "
                             f"{type(exc).__name__}: {exc}"}
        seen: set[tuple] = set()
        tiers = []
        for key, _pair, _handle in resolved:
            tiers.append(first_tier[key] if key not in seen else "hit")
            seen.add(key)
        return {"ok": True, "id": request.get("id"),
                "evaluations": [
                    self._reply_blob(salt, key, results[key])
                    for key, _pair, _handle in resolved],
                "handles": [handle for _key, _pair, handle in resolved],
                "tiers": tiers, "miss_seconds": miss_seconds}

    def _reply_blob(self, salt: str, key: tuple, evaluation) -> bytes:
        """The evaluation pickled once per design (FIFO-capped cache)."""
        address = (salt, key)
        blob = self._reply_blobs.get(address)
        if blob is None:
            blob = pickle.dumps(evaluation,
                                protocol=pickle.HIGHEST_PROTOCOL)
            while len(self._reply_blobs) >= self._reply_blob_cap:
                self._reply_blobs.pop(next(iter(self._reply_blobs)))
            self._reply_blobs[address] = blob
        return blob

    def _spawn_compute(self, service: EvalService,
                       inflight_key: tuple[str, tuple], key: tuple,
                       pair) -> asyncio.Future:
        """Price one miss on the compute thread; resolve a loop-side
        future every coalesced awaiter shares."""
        future = self._loop.create_future()
        self._inflight[inflight_key] = future

        def compute():
            started = time.perf_counter()
            networks, accelerator = pair
            evaluation = service.evaluator.evaluate_hardware(
                networks, accelerator)
            return evaluation, time.perf_counter() - started

        task = self._loop.run_in_executor(self._compute, compute)

        def finish(task: asyncio.Future) -> None:
            # Runs on the loop thread: cache/stats mutation is safe.
            self._inflight.pop(inflight_key, None)
            exc = task.exception()
            if exc is not None:
                future.set_exception(exc)
                return
            evaluation, seconds = task.result()
            service.admit_miss(key, evaluation, seconds)
            self.counters["computed"] += 1
            if self.store is not None:
                self._persist_queue.put_nowait(
                    (service.context_salt,
                     service.store_digest(key), key, evaluation))
            future.set_result((evaluation, seconds))

        task.add_done_callback(finish)
        return future

    async def _drain_persist_queue(self) -> None:
        """The single writer task: all store appends flow through here
        (and through the one-thread write executor), so appends are
        serialized no matter how many clients are pricing."""
        while True:
            entries = [await self._persist_queue.get()]
            while True:
                try:
                    entries.append(self._persist_queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._loop.run_in_executor(
                    self._write, self.store.put_many, entries)
                self.counters["persisted"] += len(entries)
            except Exception:
                # The store indexes only after a successful append, so
                # a failed write (full disk) leaves it consistent; the
                # entries stay served from the LRU for this daemon's
                # lifetime.
                self.counters["persist_errors"] += len(entries)
            finally:
                for _ in entries:
                    self._persist_queue.task_done()

    def _handle_stats(self, service: EvalService):
        return {"ok": True,
                "stats": service.stats.snapshot(),
                "cache_len": service.cache_len,
                "services": len(self.services),
                "server": dict(self.counters),
                "store_entries": (len(self.store)
                                  if self.store is not None else 0)}


def serve(socket_path: str | Path, *,
          store_path: str | Path | None = None,
          cache_size: int = 4096) -> PricingServer:
    """Run a pricing daemon until SIGTERM/SIGINT (blocking).

    The CLI entry point (``repro serve``).  Returns the wound-down
    server so callers can inspect its counters.
    """
    server = PricingServer(socket_path, store_path=store_path,
                           cache_size=cache_size)

    async def main() -> None:
        await server.start()
        server.install_signal_handlers()
        try:
            await server._shutdown_event.wait()
        finally:
            await server.shutdown()

    asyncio.run(main())
    return server


@contextmanager
def serve_in_thread(socket_path: str | Path | None = None, *,
                    store_path: str | Path | None = None,
                    cache_size: int = 4096,
                    max_frame_bytes: int = MAX_FRAME_BYTES):
    """Run a daemon on a background thread (tests, fuzzing, benches).

    Yields the started :class:`PricingServer`; the daemon is shut down
    gracefully — in-flight pricing finished, persist queue drained,
    memos flushed — when the block exits.  Without ``socket_path`` a
    short-lived temp directory hosts the socket (Unix socket paths
    have a ~100-byte limit deep pytest tmp dirs can exceed).
    """
    owned_dir: str | None = None
    if socket_path is None:
        owned_dir = tempfile.mkdtemp(prefix="repro-serve-")
        socket_path = Path(owned_dir) / "pricing.sock"
    server = PricingServer(socket_path, store_path=store_path,
                           cache_size=cache_size,
                           max_frame_bytes=max_frame_bytes)
    started = threading.Event()
    boot_error: list[BaseException] = []

    def main() -> None:
        async def run() -> None:
            try:
                await server.start()
            except BaseException as exc:
                boot_error.append(exc)
                started.set()
                return
            started.set()
            try:
                await server._shutdown_event.wait()
            finally:
                await server.shutdown()

        asyncio.run(run())

    thread = threading.Thread(target=main, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("pricing daemon failed to start in time")
    if boot_error:
        thread.join(timeout=10)
        raise boot_error[0]
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=60)
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
