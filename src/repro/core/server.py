"""Pricing-as-a-service: the async multi-client evaluation daemon.

The co-exploration loop is bottlenecked by hardware pricing, not the
optimiser — the observation behind deephyper's asynchronous search and
Apollo's shared transferable evaluation data.  This module turns the
pricing tier into a long-running service (``repro serve``) that many
concurrent search clients reach over a local Unix socket, sharing one
LRU + persistent store + cost-model memo instead of each warming a
private cache from zero.

Architecture (one asyncio loop, two single-thread executors):

- **Hosted services.**  Each client ``hello`` ships its evaluation
  context (workload, cost parameters, rho); the server builds — or
  reuses — one :class:`~repro.core.evalservice.EvalService` per
  context salt, exactly like campaign sharing, so equal-context
  clients share one cache and differing contexts can never poison
  each other (entries are salt-namespaced).
- **Single compute thread, optional worker pool.**  Evaluators are not
  thread-safe, so by default all miss computation runs on a one-thread
  executor; the event loop stays free to serve cache hits and accept
  connections while a miss prices.  Cache/stats mutations happen only
  on the loop thread (executor callbacks), keeping the service
  single-threaded in effect.  ``workers > 1`` adds one process pool
  per hosted context (the same initializer-built per-worker evaluators
  :class:`~repro.core.evalservice.EvalService` uses), so distinct
  misses of one context price concurrently; coalescing still happens
  on the loop thread *before* dispatch, so each distinct in-flight
  design is computed exactly once no matter how many workers run.  A
  broken pool (worker OOM-killed) is dropped, its in-flight misses
  repriced on the serial thread, and the pool rebuilt lazily —
  mirroring the service's own fault tolerance.
- **Cross-client coalescing.**  An in-flight future map keyed by
  ``(salt, content key)``: when client B submits a design client A is
  currently pricing, B awaits A's future instead of recomputing —
  identical in-flight content keys are priced exactly once.
- **Single writer task.**  Computed misses are enqueued and drained by
  one task that appends to the store through a dedicated one-thread
  executor, so all store appends stay serialized — the same
  single-writer contract the store's ``flock`` enforces across
  processes, upheld inside the daemon by construction.
- **Graceful SIGTERM.**  Shutdown stops accepting, waits for in-flight
  pricing, drains the persist queue, flushes every hosted service's
  cost memo and releases the store writer lock — a ``kill`` never
  drops priced work.  A *second* signal during the drain forces an
  immediate exit (crash semantics: the store's durable prefix is kept
  intact by construction, and the next daemon opens it with
  ``recover=True``).

Hardening (one faulty client must never take the daemon down):

- **Crash recovery.**  The store is opened with ``recover=True``: a
  file torn by a previous crash mid-append is truncated back to the
  last valid record, the tail quarantined to a ``.corrupt`` sidecar.
- **Stale-socket probing.**  A leftover socket file is only unlinked
  after a probe-connect proves nothing is listening — a starting
  daemon never steals a live daemon's socket.
- **Deadlines + shedding.**  Optional per-connection read deadline and
  a write deadline: a stalled or unread-buffer-filling client is shed
  (connection dropped, ``shed`` counter) without blocking the loop.
- **Bounded in-flight queue.**  Past ``max_inflight`` queued
  computations, submits are refused loudly with a ``retryable`` error
  frame the client backs off on — memory stays bounded under storm.
- **Compute isolation.**  A design whose pricing raises (poisoned
  input) answers a per-request error frame; the daemon, its other
  connections and coalesced siblings of *other* designs are untouched.
- **Status probing.**  A pre-handshake ``status`` op
  (``repro serve --status``) reports uptime, hosted services,
  in-flight and queued work, counters and store occupancy.

Determinism: pricing is RNG-free, so a served evaluation is
bit-identical to an in-process one — the ``served`` and ``chaos-serve``
oracle pairs in :mod:`repro.core.differential` and
``benchmarks/bench_serve.py`` gate this continuously.
"""

from __future__ import annotations

import asyncio
import pickle
import shutil
import signal
import socket
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.core.evalservice import (
    EvalService,
    _eval_in_worker,
    _init_worker,
    design_content,
    evaluation_context_salt,
)
from repro.core.faults import TornWriteError
from repro.core.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.core.store import EvalStore
from repro.cost.model import CostModel
from repro.utils.pool import pool_context

__all__ = ["PricingServer", "serve", "serve_in_thread"]


def _timed_eval_in_worker(pair):
    """Worker-side pricing with its own wall-clock, so ``miss_seconds``
    reflects compute time, not pool queue wait."""
    started = time.perf_counter()
    return _eval_in_worker(pair), time.perf_counter() - started


def _warm_worker() -> None:
    """No-op warmup task: forces a pool worker to spawn and run its
    initializer (evaluator construction) ahead of the first miss."""
    return None


class PricingServer:
    """One pricing daemon: socket, hosted services, store, writer task.

    Args:
        socket_path: Unix socket to listen on (created on start; a
            stale file from a dead daemon is probe-connected first and
            only replaced when nothing answers).
        store_path: Optional persistent evaluation store backing every
            hosted service.  Opened for writing with ``recover=True``
            on start — the store's writer lock makes a second daemon on
            the same store fail loudly before it can touch the socket,
            and a tail torn by a previous crash is recovered.
        cache_size: LRU capacity of each hosted service.
        max_frame_bytes: Protocol frame-size guard (tests shrink it).
        read_timeout: Seconds a connection may sit idle between
            requests before being shed (``None`` = wait forever, the
            default — searches legitimately think between batches).
        write_timeout: Seconds a reply write may stall before the
            client is shed (``None`` = forever).  The default guards
            the loop against a client that stops reading.
        max_inflight: Bound on concurrently queued miss computations;
            submits needing more are refused with a ``retryable`` error
            frame.
        workers: Process-pool width for miss computation (``repro
            serve --workers``).  ``0``/``1`` price every miss on the
            single compute thread (default).  ``> 1`` builds one pool
            per hosted context, lazily at its first miss; distinct
            in-flight designs still coalesce on the loop thread before
            dispatch, so the single-compute guarantee is unchanged.
            Fault-injection hooks live in the daemon process, so a
            ``fault_injector`` keeps computation on the serial thread.
        fault_injector: Test-only :class:`repro.core.faults.\
FaultInjector` hooked into the reply/batch/compute/append seams.
        maintenance_interval: Seconds between idle-path store
            maintenance checks (``None`` disables them).  When the
            daemon is idle — nothing in flight, persist queue drained —
            and the store has accumulated enough droppable records
            (``compact_min_redundant``), the store is compacted on the
            write executor, serialized with appends.
        compact_min_redundant: Droppable-record threshold handed to
            :meth:`repro.core.store.EvalStore.maybe_compact`.
    """

    def __init__(self, socket_path: str | Path, *,
                 store_path: str | Path | None = None,
                 cache_size: int = 4096,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 read_timeout: float | None = None,
                 write_timeout: float | None = 60.0,
                 max_inflight: int = 256,
                 workers: int = 0,
                 fault_injector=None,
                 maintenance_interval: float | None = 300.0,
                 compact_min_redundant: int = 256) -> None:
        self.socket_path = Path(socket_path)
        self.store_path = (Path(store_path)
                           if store_path is not None else None)
        self.cache_size = cache_size
        self.max_frame_bytes = max_frame_bytes
        self.read_timeout = read_timeout
        self.write_timeout = write_timeout
        self.max_inflight = max(1, max_inflight)
        self.workers = max(0, workers)
        self.maintenance_interval = maintenance_interval
        self.compact_min_redundant = max(1, compact_min_redundant)
        self._injector = fault_injector
        self.store: EvalStore | None = None
        #: context salt -> hosted service (inspectable in tests).
        self.services: dict[str, EvalService] = {}
        self.counters = {"connections": 0, "batches": 0, "computed": 0,
                         "computed_parallel": 0, "coalesced": 0,
                         "persisted": 0, "persist_errors": 0,
                         "compute_errors": 0, "refused_busy": 0,
                         "shed": 0, "pool_restarts": 0,
                         "compactions": 0, "compacted_records": 0}
        #: context salt -> lazily built miss-computation process pool.
        self._pools: dict[str, ProcessPoolExecutor] = {}
        #: context salt -> pool initializer args (recorded at hello).
        self._pool_args: dict[str, tuple] = {}
        #: context salt -> cross-client coalesced submits (the hosted
        #: service's own stats cannot see coalescing — it happens on
        #: the in-flight map before the service is asked anything).
        self._coalesced_by_salt: dict[str, int] = {}
        self._inflight: dict[tuple[str, tuple], asyncio.Future] = {}
        # Evaluations pickled once, served many times: the hit path of
        # a repeat-heavy trace is dominated by (re)pickling reply
        # objects, so replies are cached as blobs per (salt, key).
        self._reply_blobs: dict[tuple[str, tuple], bytes] = {}
        self._reply_blob_cap = 16384
        self._persist_queue: asyncio.Queue | None = None
        self._compute: ThreadPoolExecutor | None = None
        self._write: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writer_task: asyncio.Task | None = None
        self._maintenance_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._force_event: asyncio.Event | None = None
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._started_at = 0.0
        self._closed = False
        self._aborted = False
        #: Whether the daemon exited through :meth:`abort` (forced /
        #: crash-style) rather than the graceful drain.
        self.aborted = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open (and if needed recover) the store, bind the socket,
        launch the writer task."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._force_event = asyncio.Event()
        self._started_at = time.monotonic()
        if self.store_path is not None:
            # First thing: the writer lock.  A second daemon on the
            # same store dies here, before unlinking anyone's socket.
            # recover=True picks up a tail torn by a previous crash.
            self.store = EvalStore(self.store_path, recover=True,
                                   fault_injector=self._injector)
        try:
            self._compute = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-compute")
            self._write = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-write")
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self._replace_stale_socket()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path))
            self._persist_queue = asyncio.Queue()
            self._writer_task = self._loop.create_task(
                self._drain_persist_queue())
            if (self.store is not None
                    and self.maintenance_interval is not None):
                self._maintenance_task = self._loop.create_task(
                    self._maintenance_loop())
        except BaseException:
            # A boot failure must release everything it acquired —
            # above all the store writer lock.
            if self._compute is not None:
                self._compute.shutdown(wait=False)
            if self._write is not None:
                self._write.shutdown(wait=False)
            if self.store is not None:
                self.store.close()
            raise

    def _replace_stale_socket(self) -> None:
        """Unlink a leftover socket file only if nothing answers it.

        A daemon that died hard (or was force-killed) leaves its socket
        behind; a *live* daemon's socket accepts the probe and the
        newcomer refuses to steal it.
        """
        if not self.socket_path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            try:
                probe.connect(str(self.socket_path))
            except OSError:
                # Nothing listening: genuinely stale, safe to replace.
                self.socket_path.unlink(missing_ok=True)
            else:
                raise ValueError(
                    f"another pricing daemon is already listening on "
                    f"{self.socket_path}; refusing to steal a live "
                    f"socket (use a different --socket, or stop the "
                    f"other daemon first)")
        finally:
            probe.close()

    def _on_signal(self) -> None:
        """First signal: graceful drain.  Second: force immediate exit
        (the store's durable prefix stays valid; next open recovers)."""
        if not self._shutdown_event.is_set():
            self._shutdown_event.set()
        else:
            self._force_event.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the graceful shutdown; a repeat of
        either forces immediate exit (main thread only — threads cannot
        install signal handlers)."""
        assert self._loop is not None, "call start() first"
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, self._on_signal)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by ``serve_in_thread``).
        Like a signal: the first call drains, a second call forces."""
        loop = self._loop
        if loop is None or self._shutdown_event is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_signal)
        except RuntimeError:  # loop already closed
            pass

    def force_stop(self) -> None:
        """Thread-safe immediate-exit trigger (crash semantics)."""
        loop, event = self._loop, self._force_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:  # loop already closed
            pass

    async def run_async(self, *, install_signals: bool = False) -> None:
        """Start, serve until stopped (gracefully or forced), wind
        down accordingly."""
        await self.start()
        if install_signals:
            self.install_signal_handlers()
        await self._serve_until_stopped()

    async def _serve_until_stopped(self) -> None:
        """Serve until the shutdown event; force event (second signal,
        injected kill) aborts — including mid-drain."""
        shutdown_wait = asyncio.ensure_future(
            self._shutdown_event.wait())
        force_wait = asyncio.ensure_future(self._force_event.wait())
        try:
            done, _ = await asyncio.wait(
                {shutdown_wait, force_wait},
                return_when=asyncio.FIRST_COMPLETED)
            if force_wait in done:
                await self.abort()
                return
            graceful = asyncio.ensure_future(self.shutdown())
            done, _ = await asyncio.wait(
                {graceful, force_wait},
                return_when=asyncio.FIRST_COMPLETED)
            if graceful in done:
                await graceful  # propagate drain errors
                return
            # Second signal landed mid-drain: stop draining, get out.
            graceful.cancel()
            try:
                await graceful
            except asyncio.CancelledError:
                pass
            await self.abort()
        finally:
            for waiter in (shutdown_wait, force_wait):
                if not waiter.done():
                    waiter.cancel()
            # No exit path may leak the store's writer lock: a drain
            # error propagating out of ``await graceful`` would
            # otherwise leave the handle open (and the store locked)
            # until GC.  Both calls are idempotent no-ops on the
            # normal paths, which already wound down.
            for pool in self._pools.values():
                pool.shutdown(wait=False, cancel_futures=True)
            self._pools.clear()
            if self._write is not None:
                self._write.shutdown(wait=True, cancel_futures=True)
            if self.store is not None:
                self.store.close()

    async def shutdown(self) -> None:
        """Graceful wind-down: no accepted connection loses priced
        work and nothing pending skips persistence."""
        if self._closed or self._aborted:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except asyncio.CancelledError:
                pass
        if self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        if self._persist_queue is not None:
            await self._persist_queue.join()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self.store is not None:
            try:
                for service in self.services.values():
                    await self._loop.run_in_executor(
                        self._write, service.flush_store)
            except TornWriteError:
                # Injected crash mid-flush: stop flushing, close out —
                # the next open recovers the torn tail.
                self.aborted = True
        for pool in self._pools.values():
            pool.shutdown(wait=True)
        self._pools.clear()
        if self._compute is not None:
            self._compute.shutdown(wait=True)
        if self._write is not None:
            self._write.shutdown(wait=True)
        if self.store is not None:
            self.store.close()
        self.socket_path.unlink(missing_ok=True)

    async def abort(self) -> None:
        """Forced teardown (second signal / injected kill): drop
        everything *now*.

        Crash semantics by design: in-flight work and the persist queue
        are dropped (the store's durable prefix is still valid — every
        completed append was fsynced), client connections reset, and
        the socket file is deliberately left behind so the next
        daemon's probe-connect exercises the stale-socket path.
        """
        if self._aborted:
            return
        self._aborted = True
        self.aborted = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._client_writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._maintenance_task is not None \
                and not self._maintenance_task.done():
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except asyncio.CancelledError:
                pass
        if self._writer_task is not None and not self._writer_task.done():
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        for future in list(self._inflight.values()):
            if not future.done():
                future.cancel()
        self._inflight.clear()
        for pool in self._pools.values():
            pool.shutdown(wait=False, cancel_futures=True)
        self._pools.clear()
        if self._compute is not None:
            self._compute.shutdown(wait=False, cancel_futures=True)
        if self._write is not None:
            # Wait for an already-running append/flush (queued writes
            # are still dropped): closing the store underneath it
            # would let the append re-acquire the writer lock after
            # close, leaking a locked handle until GC and blocking
            # the next open's recovery.
            self._write.shutdown(wait=True, cancel_futures=True)
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _reply(self, writer: asyncio.StreamWriter,
                     payload: dict) -> None:
        if self._injector is not None:
            stall = self._injector.reply_stall()
            if stall:
                await asyncio.sleep(stall)
        writer.write(encode_frame(payload,
                                  max_bytes=self.max_frame_bytes))
        try:
            if self.write_timeout is not None:
                await asyncio.wait_for(writer.drain(),
                                       self.write_timeout)
            else:
                await writer.drain()
        except asyncio.TimeoutError:
            # The client stopped reading; shed it rather than let its
            # unread buffer pin the connection handler forever.
            self.counters["shed"] += 1
            raise ConnectionResetError(
                "slow client shed: reply write deadline exceeded")

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        self._client_writers.add(writer)
        service: EvalService | None = None
        # Connection-local design handles: entry i is the (key, pair)
        # this client first submitted as handle i, so its repeats ride
        # as ints instead of re-pickled kilobyte design objects.
        handles: list[tuple[tuple, tuple]] = []
        try:
            while True:
                try:
                    frame = read_frame(reader,
                                       max_bytes=self.max_frame_bytes)
                    if self.read_timeout is not None:
                        request = await asyncio.wait_for(
                            frame, self.read_timeout)
                    else:
                        request = await frame
                except asyncio.TimeoutError:
                    # Idle past the read deadline: shed the connection
                    # (the client reconnects transparently if it is
                    # still alive — handles are re-registered).
                    self.counters["shed"] += 1
                    return
                except (FrameError,
                        asyncio.IncompleteReadError) as exc:
                    # The stream cannot be trusted past a malformed
                    # frame: answer best-effort, then hang up.
                    await self._reply(writer,
                                      {"ok": False, "error": str(exc)})
                    return
                if request is None:
                    return  # clean disconnect between frames
                response = await self._dispatch(request, service,
                                                handles)
                if isinstance(response, tuple):  # hello binds a service
                    service, response = response
                await self._reply(writer, response)
                if response.get("shutdown"):
                    self._shutdown_event.set()
                    return
        except (ConnectionResetError, BrokenPipeError):
            # Client vanished mid-reply.  In-flight computations keep
            # running to completion (and persist) — other clients
            # coalesced onto them are unaffected.
            pass
        except asyncio.CancelledError:
            # Daemon aborting (forced exit) while this handler was
            # mid-await: drop the connection quietly — the client's
            # retry machinery takes it from here.
            pass
        finally:
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request, service: EvalService | None,
                        handles: list):
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False,
                    "error": "malformed request (expected a dict "
                             "with an 'op' field)"}
        op = request["op"]
        if op == "hello":
            return self._handle_hello(request)
        if op == "ping":
            return {"ok": True, "version": PROTOCOL_VERSION}
        if op == "status":
            return self._handle_status()
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        if service is None:
            return {"ok": False,
                    "error": f"op {op!r} before a successful hello"}
        if op == "submit":
            return await self._handle_submit(service, request, handles)
        if op == "stats":
            return self._handle_stats(service)
        if op == "bump_generation":
            service.bump_generation()
            return {"ok": True}
        if op == "flush":
            try:
                flushed = await self._loop.run_in_executor(
                    self._write, service.flush_store)
            except TornWriteError as exc:
                # Injected crash mid-append: daemon dies, connection
                # resets (the client retries against the next daemon
                # or falls back).
                self._force_event.set()
                raise ConnectionResetError(str(exc)) from exc
            return {"ok": True, "flushed": flushed}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_hello(self, request):
        version = request.get("version")
        if version != PROTOCOL_VERSION:
            return None, {
                "ok": False,
                "error": f"protocol version {version!r} is not "
                         f"supported (server speaks "
                         f"{PROTOCOL_VERSION})"}
        try:
            workload = request["workload"]
            params = request["cost_params"]
            rho = request["rho"]
            salt = evaluation_context_salt(workload, params, rho)
        except Exception as exc:
            return None, {"ok": False,
                          "error": f"bad hello payload: {exc}"}
        service = self.services.get(salt)
        if service is None:
            evaluator = Evaluator(workload, CostModel(params),
                                  trainer=None, rho=rho)
            service = EvalService(evaluator,
                                  cache_size=self.cache_size,
                                  store=self.store)
            self.services[salt] = service
            if self.workers > 1:
                self._pool_args[salt] = (workload, params, rho)
                # Warm the pool now: workers fork and build their
                # evaluators while the client is still assembling its
                # first batch, instead of on the first miss's clock.
                pool = self._pool_for(salt)
                if pool is not None:
                    for _ in range(self.workers):
                        pool.submit(_warm_worker)
        else:
            # Same accounting as campaign sharing: entries priced
            # before this client joined count as *shared* reuse.
            service.bump_generation()
        return service, {"ok": True, "salt": salt,
                         "version": PROTOCOL_VERSION,
                         # Degraded clients layer a read-only local
                         # fallback over the daemon's store.
                         "store": (str(self.store_path)
                                   if self.store_path is not None
                                   else None)}

    def _handle_status(self) -> dict:
        """Pre-handshake liveness/occupancy probe
        (``repro serve --status``).

        ``contexts`` breaks the traffic down per hosted context salt —
        requests/hits/store hits from the hosted service's own stats,
        plus the cross-client coalesced submits only the server's
        in-flight map can see — so a shared daemon shows *which*
        evaluation context its cache is actually working for.
        """
        return {"ok": True, "version": PROTOCOL_VERSION,
                "uptime_seconds": time.monotonic() - self._started_at,
                "services": len(self.services),
                "workers": self.workers,
                "contexts": {
                    salt: {"requests": service.stats.requests,
                           "hits": service.stats.hits,
                           "store_hits": service.stats.store_hits,
                           "coalesced": self._coalesced_by_salt.get(
                               salt, 0),
                           "hit_rate": service.stats.hit_rate}
                    for salt, service in self.services.items()},
                "inflight": len(self._inflight),
                "persist_queue": (self._persist_queue.qsize()
                                  if self._persist_queue is not None
                                  else 0),
                "counters": dict(self.counters),
                "store_path": (str(self.store_path)
                               if self.store_path is not None else None),
                "store_entries": (len(self.store)
                                  if self.store is not None else 0),
                "store_recovered": (self.store.recovered
                                    if self.store is not None else None)}

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    async def _handle_submit(self, service: EvalService, request,
                             handles: list):
        if self._injector is not None \
                and self._injector.on_server_batch():
            # Injected daemon kill: crash semantics, mid-request.
            self._force_event.set()
            raise ConnectionResetError("fault injection: daemon killed")
        entries = request.get("pairs")
        if not isinstance(entries, list):
            return {"ok": False, "error": "submit without a pairs list"}
        resolved: list[tuple[tuple, tuple, int]] = []
        try:
            for entry in entries:
                if isinstance(entry, int):
                    if not 0 <= entry < len(handles):
                        return {"ok": False, "id": request.get("id"),
                                "error": "unknown design handle "
                                         f"{entry} (this connection "
                                         f"issued {len(handles)})"}
                    key, pair = handles[entry]
                    resolved.append((key, pair, entry))
                else:
                    networks, accelerator = entry
                    pair = (networks, accelerator)
                    key = design_content(networks, accelerator)
                    handles.append((key, pair))
                    resolved.append((key, pair, len(handles) - 1))
        except Exception as exc:
            return {"ok": False, "id": request.get("id"),
                    "error": f"malformed design entry: {exc}"}
        self.counters["batches"] += 1
        service.stats.batches += 1
        salt = service.context_salt
        results: dict[tuple, object] = {}
        first_tier: dict[tuple, str] = {}
        awaited: dict[tuple, asyncio.Future] = {}
        for key, pair, _handle in resolved:
            if key in first_tier:
                # Intra-batch duplicate: the first occurrence answers
                # for all of them (counted as a hit, mirroring
                # EvalService.evaluate_many).
                service.stats.hits += 1
                continue
            evaluation, tier = service.lookup_tiers(key)
            if evaluation is not None:
                results[key] = evaluation
                first_tier[key] = tier
                continue
            inflight_key = (salt, key)
            pending = self._inflight.get(inflight_key)
            if pending is not None:
                # Another client is pricing this exact design right
                # now: one compute, many answers.
                awaited[key] = pending
                first_tier[key] = "coalesced"
                self.counters["coalesced"] += 1
                self._coalesced_by_salt[salt] = \
                    self._coalesced_by_salt.get(salt, 0) + 1
                continue
            if len(self._inflight) >= self.max_inflight:
                # Refuse loudly instead of ballooning; computations
                # already spawned for this batch run to completion and
                # land in the cache, so the retried submit is cheaper.
                self.counters["refused_busy"] += 1
                return {"ok": False, "id": request.get("id"),
                        "retryable": True,
                        "error": f"pricing daemon at capacity "
                                 f"({len(self._inflight)} computations "
                                 f"in flight); retry with backoff"}
            awaited[key] = self._spawn_compute(service, inflight_key,
                                               key, pair)
            first_tier[key] = "miss"
        miss_seconds = 0.0
        if awaited:
            # return_exceptions: one poisoned design must not leave
            # sibling futures unretrieved (or kill the daemon).
            outcomes = await asyncio.gather(*awaited.values(),
                                            return_exceptions=True)
            failures: list[tuple[tuple, BaseException]] = []
            for key, outcome in zip(awaited.keys(), outcomes):
                if isinstance(outcome, BaseException):
                    failures.append((key, outcome))
                    continue
                evaluation, seconds = outcome
                results[key] = evaluation
                if first_tier[key] == "miss":
                    miss_seconds += seconds
            if failures:
                self.counters["compute_errors"] += len(failures)
                _key, exc = failures[0]
                return {"ok": False, "id": request.get("id"),
                        "error": f"pricing failed for {len(failures)} "
                                 f"of {len(awaited)} designs (first: "
                                 f"{type(exc).__name__}: {exc})"}
        seen: set[tuple] = set()
        tiers = []
        for key, _pair, _handle in resolved:
            tiers.append(first_tier[key] if key not in seen else "hit")
            seen.add(key)
        return {"ok": True, "id": request.get("id"),
                "evaluations": [
                    self._reply_blob(salt, key, results[key])
                    for key, _pair, _handle in resolved],
                "handles": [handle for _key, _pair, handle in resolved],
                "tiers": tiers, "miss_seconds": miss_seconds}

    def _reply_blob(self, salt: str, key: tuple, evaluation) -> bytes:
        """The evaluation pickled once per design (FIFO-capped cache)."""
        address = (salt, key)
        blob = self._reply_blobs.get(address)
        if blob is None:
            blob = pickle.dumps(evaluation,
                                protocol=pickle.HIGHEST_PROTOCOL)
            while len(self._reply_blobs) >= self._reply_blob_cap:
                self._reply_blobs.pop(next(iter(self._reply_blobs)))
            self._reply_blobs[address] = blob
        return blob

    def _pool_for(self, salt: str) -> ProcessPoolExecutor | None:
        """This context's miss-computation pool, built lazily.

        ``None`` routes the miss to the serial compute thread: workers
        disabled, the context unknown (no hello recorded initargs), or
        a fault injector present — injection hooks live in the daemon
        process, so chaos runs keep the serial path's exact semantics.
        """
        if self.workers <= 1 or self._injector is not None:
            return None
        pool = self._pools.get(salt)
        if pool is None:
            initargs = self._pool_args.get(salt)
            if initargs is None:
                return None
            ctx = pool_context(
                require_picklable=(_init_worker, _eval_in_worker,
                                   *initargs))
            pool = ProcessPoolExecutor(max_workers=self.workers,
                                       mp_context=ctx,
                                       initializer=_init_worker,
                                       initargs=initargs)
            self._pools[salt] = pool
        return pool

    def _drop_pool(self, salt: str) -> None:
        """Discard a broken pool (rebuilt lazily on the next miss)."""
        broken = self._pools.pop(salt, None)
        if broken is not None:
            self.counters["pool_restarts"] += 1
            broken.shutdown(wait=False, cancel_futures=True)

    def _spawn_compute(self, service: EvalService,
                       inflight_key: tuple[str, tuple], key: tuple,
                       pair) -> asyncio.Future:
        """Price one miss — on this context's worker pool when enabled,
        else on the compute thread; resolve a loop-side future every
        coalesced awaiter shares."""
        future = self._loop.create_future()
        self._inflight[inflight_key] = future
        salt = service.context_salt

        def compute():
            if self._injector is not None:
                self._injector.on_compute(key)
            started = time.perf_counter()
            networks, accelerator = pair
            evaluation = service.evaluator.evaluate_hardware(
                networks, accelerator)
            return evaluation, time.perf_counter() - started

        task = None
        pooled = pool = self._pool_for(salt)
        if pool is not None:
            try:
                task = self._loop.run_in_executor(
                    pool, _timed_eval_in_worker, pair)
            except BrokenProcessPool:
                # The pool broke between misses; reprice serially and
                # let the next miss rebuild it.
                self._drop_pool(salt)
                pooled = None
        if task is None:
            task = self._loop.run_in_executor(self._compute, compute)

        def finish(task: asyncio.Future) -> None:
            # Runs on the loop thread: cache/stats mutation is safe.
            nonlocal pooled
            if future.done():  # aborted while computing
                self._inflight.pop(inflight_key, None)
                if not task.cancelled():
                    task.exception()  # mark retrieved
                return
            if task.cancelled():
                self._inflight.pop(inflight_key, None)
                future.cancel()
                return
            exc = task.exception()
            if isinstance(exc, BrokenProcessPool) and pooled is not None:
                # A worker died (OOM kill, hard crash) mid-computation.
                # Pricing is deterministic, so this miss repriced on
                # the serial thread answers identically; the in-flight
                # entry stays registered, so late submits still
                # coalesce onto the retry instead of recomputing.
                self._drop_pool(salt)
                pooled = None
                try:
                    retry = self._loop.run_in_executor(self._compute,
                                                       compute)
                except RuntimeError as error:  # shut down mid-retry
                    self._inflight.pop(inflight_key, None)
                    future.set_exception(error)
                    return
                retry.add_done_callback(finish)
                return
            self._inflight.pop(inflight_key, None)
            if exc is not None:
                future.set_exception(exc)
                return
            evaluation, seconds = task.result()
            service.admit_miss(key, evaluation, seconds)
            self.counters["computed"] += 1
            if pooled is not None:
                self.counters["computed_parallel"] += 1
                # The worker ran its own evaluator; mirror the
                # invocation so `hardware_evaluations` stays truthful
                # (same accounting as EvalService's pool path).
                service.evaluator.hardware_evaluations += 1
            if self.store is not None:
                self._persist_queue.put_nowait(
                    (service.context_salt,
                     service.store_digest(key), key, evaluation))
            future.set_result((evaluation, seconds))

        task.add_done_callback(finish)
        # A compute that fails after its only awaiter disconnected (or
        # was refused) must not surface "exception never retrieved".
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        return future

    async def _drain_persist_queue(self) -> None:
        """The single writer task: all store appends flow through here
        (and through the one-thread write executor), so appends are
        serialized no matter how many clients are pricing."""
        while True:
            entries = [await self._persist_queue.get()]
            while True:
                try:
                    entries.append(self._persist_queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._loop.run_in_executor(
                    self._write, self.store.put_many, entries)
                self.counters["persisted"] += len(entries)
            except TornWriteError:
                # Injected crash mid-append: the process "dies" here.
                # Continuing to append after torn bytes would strand
                # every later record behind an unreadable tail, so a
                # real daemon could never survive this either.
                self.counters["persist_errors"] += len(entries)
                self._force_event.set()
                return
            except Exception:
                # The store indexes only after a successful append, so
                # a failed write (full disk) leaves it consistent; the
                # entries stay served from the LRU for this daemon's
                # lifetime.
                self.counters["persist_errors"] += len(entries)
            finally:
                for _ in entries:
                    self._persist_queue.task_done()

    async def _maintenance_loop(self) -> None:
        """Idle-path store maintenance: every ``maintenance_interval``
        seconds, if no request is in flight and the persist queue has
        drained, ask the store to compact away redundant records.

        The compaction runs on the one-thread write executor, so it is
        serialized with appends — a client arriving mid-compaction just
        queues its persist behind it.
        """
        while True:
            await asyncio.sleep(self.maintenance_interval)
            if self._inflight or (self._persist_queue is not None
                                  and self._persist_queue.qsize()):
                continue
            try:
                report = await self._loop.run_in_executor(
                    self._write, self.store.maybe_compact,
                    self.compact_min_redundant)
            except Exception:
                # Maintenance is best-effort; a failed compaction leaves
                # the store untouched (the swap is atomic) and must not
                # kill the daemon.
                continue
            if report is not None:
                self.counters["compactions"] += 1
                self.counters["compacted_records"] += (
                    report.get("records_dropped", 0))

    def _handle_stats(self, service: EvalService):
        return {"ok": True,
                "stats": service.stats.snapshot(),
                "cache_len": service.cache_len,
                "services": len(self.services),
                "server": dict(self.counters),
                "store_entries": (len(self.store)
                                  if self.store is not None else 0),
                "store_redundant": (self.store.redundant_records
                                    if self.store is not None else 0)}


def serve(socket_path: str | Path, *,
          store_path: str | Path | None = None,
          cache_size: int = 4096,
          read_timeout: float | None = None,
          write_timeout: float | None = 60.0,
          max_inflight: int = 256,
          workers: int = 0) -> PricingServer:
    """Run a pricing daemon until SIGTERM/SIGINT (blocking; a second
    signal forces immediate exit).

    The CLI entry point (``repro serve``).  Returns the wound-down
    server so callers can inspect its counters.
    """
    server = PricingServer(socket_path, store_path=store_path,
                           cache_size=cache_size,
                           read_timeout=read_timeout,
                           write_timeout=write_timeout,
                           max_inflight=max_inflight,
                           workers=workers)
    asyncio.run(server.run_async(install_signals=True))
    return server


@contextmanager
def serve_in_thread(socket_path: str | Path | None = None, *,
                    store_path: str | Path | None = None,
                    cache_size: int = 4096,
                    max_frame_bytes: int = MAX_FRAME_BYTES,
                    read_timeout: float | None = None,
                    write_timeout: float | None = 60.0,
                    max_inflight: int = 256,
                    workers: int = 0,
                    fault_injector=None,
                    maintenance_interval: float | None = 300.0,
                    compact_min_redundant: int = 256):
    """Run a daemon on a background thread (tests, fuzzing, benches).

    Yields the started :class:`PricingServer`; the daemon is shut down
    gracefully — in-flight pricing finished, persist queue drained,
    memos flushed — when the block exits (or torn down hard if a fault
    forced it first).  Without ``socket_path`` a short-lived temp
    directory hosts the socket (Unix socket paths have a ~100-byte
    limit deep pytest tmp dirs can exceed).
    """
    owned_dir: str | None = None
    if socket_path is None:
        owned_dir = tempfile.mkdtemp(prefix="repro-serve-")
        socket_path = Path(owned_dir) / "pricing.sock"
    server = PricingServer(socket_path, store_path=store_path,
                           cache_size=cache_size,
                           max_frame_bytes=max_frame_bytes,
                           read_timeout=read_timeout,
                           write_timeout=write_timeout,
                           max_inflight=max_inflight,
                           workers=workers,
                           fault_injector=fault_injector,
                           maintenance_interval=maintenance_interval,
                           compact_min_redundant=compact_min_redundant)
    started = threading.Event()
    boot_error: list[BaseException] = []

    def main() -> None:
        async def run() -> None:
            try:
                await server.start()
            except BaseException as exc:
                boot_error.append(exc)
                started.set()
                return
            started.set()
            await server._serve_until_stopped()

        asyncio.run(run())

    thread = threading.Thread(target=main, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("pricing daemon failed to start in time")
    if boot_error:
        thread.join(timeout=10)
        raise boot_error[0]
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=60)
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
