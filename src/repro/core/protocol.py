"""Wire protocol of the pricing daemon (``repro serve``).

One frame = one length-prefixed pickle.  The framing layer is shared by
the asyncio server (:mod:`repro.core.server`) and the synchronous
client (:mod:`repro.core.client`); both sides validate the length
prefix against :data:`MAX_FRAME_BYTES` before trusting it, so a
malformed or hostile frame fails loudly instead of allocating
gigabytes or desynchronising the stream.

Frame layout::

    <u64 little-endian payload length> <pickled payload>

The payload is a plain dictionary.  Requests carry an ``op`` plus
op-specific fields; responses carry ``ok`` (bool) plus either the
result fields or an ``error`` string.  The handshake (``hello``)
carries :data:`PROTOCOL_VERSION` — a version mismatch is refused
before anything else is interpreted, so the protocol can evolve
without silently mispricing across daemon/client skew.

Ops (client -> server):

- ``hello``: ``{"op", "version", "workload", "cost_params", "rho"}`` —
  binds the connection to one evaluation context.  The server builds
  (or reuses) the hosted service for that context and replies with its
  ``salt``; the client compares it against the locally computed
  :func:`repro.core.evalservice.evaluation_context_salt`, making
  pickling drift impossible to miss.
- ``submit``: ``{"op", "id", "pairs"}`` — price a batch.  Each entry
  is either a full ``(networks, accelerator)`` pair or an ``int``
  *handle* from an earlier reply on this connection: repeat-heavy
  traces ship a few bytes per repeat instead of re-pickling kilobyte
  design objects (the dominant cost of the served hit path).  The
  reply carries ``evaluations`` (request order, each one *pickled
  separately* so the server can serve repeats from a blob cache
  without re-pickling), ``handles`` (one per entry, for the client's
  next submit), per-request ``tiers`` (``"hit" | "shared" | "store" |
  "miss" | "coalesced"``) and the batch's ``miss_seconds`` so the
  client mirrors honest stats.
- ``status``: ``{"op"}`` — pre-handshake liveness/occupancy probe
  (``repro serve --status``): uptime, hosted services, in-flight and
  queued work, counters, store occupancy.  Needs no evaluation
  context, so monitoring never pays a handshake.
- ``stats`` / ``bump_generation`` / ``flush`` / ``ping`` /
  ``shutdown``: service management; see :class:`repro.core.server.\
PricingServer`.

Error frames carry ``ok: False`` and an ``error`` string; a frame with
``retryable: True`` (the daemon's bounded in-flight queue refusing at
capacity) tells the client the *connection* is healthy and the request
should be retried with backoff, while every other refusal is terminal
for that request.

Like the checkpoint format, frames use pickle: evaluations must
round-trip bit-identically, and the socket is a *local* Unix socket
owned by the same user — only connect to daemons you started yourself.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

__all__ = ["FrameError", "MAX_FRAME_BYTES", "PROTOCOL_VERSION",
           "encode_frame", "read_frame", "recv_frame", "send_frame"]

#: Bumped on any incompatible change to the frame or message schema.
PROTOCOL_VERSION = 1

#: Upper bound either side accepts for one frame.  Generous for real
#: batches (a few hundred designs pickle to well under a megabyte) yet
#: small enough that a corrupt length prefix cannot trigger a giant
#: allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: struct format of the frame length prefix (little-endian u64) —
#: deliberately the same shape as the evaluation store's record prefix.
_LEN = struct.Struct("<Q")


class FrameError(ValueError):
    """A frame violated the protocol (oversized, truncated, unpicklable)."""


def encode_frame(payload: Any, *,
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one payload into a length-prefixed frame.

    Raises:
        FrameError: If the pickled payload exceeds ``max_bytes`` —
            callers see the oversize *before* any bytes hit the socket,
            so a too-large batch never desynchronises the stream.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > max_bytes:
        raise FrameError(
            f"frame of {len(blob)} bytes exceeds the protocol limit of "
            f"{max_bytes} bytes (split the batch into smaller chunks)")
    return _LEN.pack(len(blob)) + blob


def _decode_length(prefix: bytes, *, max_bytes: int) -> int:
    if len(prefix) != _LEN.size:
        raise FrameError(
            f"truncated frame length prefix ({len(prefix)} of "
            f"{_LEN.size} bytes)")
    (length,) = _LEN.unpack(prefix)
    if length > max_bytes:
        raise FrameError(
            f"frame announces {length} bytes, over the protocol limit "
            f"of {max_bytes} bytes")
    return length


def _decode_payload(blob: bytes, length: int) -> Any:
    if len(blob) != length:
        raise FrameError(
            f"truncated frame body ({len(blob)} of {length} bytes)")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise FrameError(f"unpicklable frame body: {exc}") from exc


async def read_frame(reader, *,
                     max_bytes: int = MAX_FRAME_BYTES) -> Any:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF *between* frames (the peer hung
    up); raises :class:`FrameError` on EOF inside a frame or on a
    prefix over ``max_bytes``.
    """
    prefix = await reader.read(_LEN.size)
    if not prefix:
        return None
    while len(prefix) < _LEN.size:
        more = await reader.read(_LEN.size - len(prefix))
        if not more:
            break
        prefix += more
    length = _decode_length(prefix, max_bytes=max_bytes)
    blob = await reader.readexactly(length) if length else b""
    return _decode_payload(blob, length)


def send_frame(sock, payload: Any, *,
               max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Blocking counterpart of ``write + drain`` for a plain socket."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def recv_frame(sock, *, max_bytes: int = MAX_FRAME_BYTES) -> Any:
    """Blocking read of one frame from a plain socket.

    Returns ``None`` on clean EOF between frames; raises
    :class:`FrameError` on truncation mid-frame or oversize.
    """
    prefix = _recv_exactly(sock, _LEN.size, eof_ok=True)
    if prefix is None:
        return None
    length = _decode_length(prefix, max_bytes=max_bytes)
    blob = _recv_exactly(sock, length) if length else b""
    return _decode_payload(blob, length)


def _recv_exactly(sock, count: int, *,
                  eof_ok: bool = False) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise FrameError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
