"""Mapping & scheduling: HAP solvers, bounds and the list scheduler."""

from repro.mapping.bounds import IlpBound, energy_lower_bound
from repro.mapping.exact import ExactResult, solve_exact
from repro.mapping.hap import HAPResult, solve_hap
from repro.mapping.problem import MappingProblem
from repro.mapping.schedule import (
    POLICIES,
    MakespanEvaluator,
    MoveStats,
    Schedule,
    ScheduledLayer,
    list_schedule,
)

__all__ = [
    "ExactResult",
    "HAPResult",
    "IlpBound",
    "MakespanEvaluator",
    "MappingProblem",
    "MoveStats",
    "POLICIES",
    "Schedule",
    "ScheduledLayer",
    "energy_lower_bound",
    "list_schedule",
    "solve_exact",
    "solve_hap",
]
