"""List scheduler for layers mapped onto sub-accelerators.

Given an assignment of layers to active sub-accelerators, the scheduler
determines execution order (the ``sch(aic_k)`` function of §III-➌) and the
resulting makespan.  Constraints:

- layers of one network form a chain: layer ``j`` cannot start before
  layer ``j-1`` finishes, regardless of where either is mapped;
- a sub-accelerator executes one layer at a time.

Three deterministic list-scheduling priority policies are provided (the
default matches the paper's needs; the others back the scheduling
ablation in ``benchmarks/bench_schedulers.py``):

- ``"earliest_start"`` (default): schedule the ready layer that can
  begin soonest, ties toward lower network index then lower flat id;
- ``"lpt"``: among equal start times, prefer the longest-processing
  layer (the classical LPT rule);
- ``"critical_path"``: among equal start times, prefer the layer whose
  remaining chain (priced at per-layer best-case durations) is longest.

Task-level parallelism across DNNs — the paper's motivation for
heterogeneous sub-accelerators — emerges naturally when different
networks occupy different sub-accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.problem import MappingProblem

__all__ = ["MakespanEvaluator", "MoveStats", "ScheduledLayer", "Schedule",
           "list_schedule", "POLICIES"]

#: Valid priority policies for :func:`list_schedule`.
POLICIES = ("earliest_start", "lpt", "critical_path")


@dataclass(frozen=True)
class ScheduledLayer:
    """One scheduled layer execution."""

    flat_id: int
    network: int
    slot_pos: int
    start: int
    finish: int


@dataclass(frozen=True)
class Schedule:
    """A complete schedule: per-layer timings plus the makespan."""

    entries: tuple[ScheduledLayer, ...]
    makespan: int

    def by_slot(self, slot_pos: int) -> tuple[ScheduledLayer, ...]:
        """Entries executed on one sub-accelerator, in start order."""
        return tuple(sorted(
            (e for e in self.entries if e.slot_pos == slot_pos),
            key=lambda e: e.start))

    def slot_busy_cycles(self, slot_pos: int) -> int:
        """Total busy time of one sub-accelerator."""
        return sum(e.finish - e.start for e in self.entries
                   if e.slot_pos == slot_pos)


@dataclass
class MoveStats:
    """Counters for HAP single-move pricing (observability, not logic).

    Attributes:
        moves_priced: ``trial_move`` requests.
        memo_hits: Trials answered from the exact-makespan memo.
        pruned: Trials skipped outright because a certified lower bound
            (per-slot load or per-chain serial work) already exceeded the
            cutoff — no simulation ran at all.
        resumed: Replays — trial moves and single-move rebases — that
            restarted from a recorded snapshot (the event where the moved
            layer first becomes schedulable) instead of from cycle 0.
        full_replays: Replays from cycle 0 (scratch rebases and
            ``makespan()``).
        steps_replayed: Simulation steps actually executed (cutoff
            early-exits stop counting where they stop simulating).  A
            batched round counts one step per event per column.
        steps_saved: Simulation steps skipped by delta-resume prefixes.
        batched_rounds: :meth:`MakespanEvaluator.trial_moves` calls —
            solver rounds priced as one vectorised suffix replay.
        batch_width: Total candidate moves priced across all batched
            rounds (``batch_width / batched_rounds`` is the mean round
            width).
    """

    moves_priced: int = 0
    memo_hits: int = 0
    pruned: int = 0
    resumed: int = 0  # trials AND rebases that resumed mid-replay
    full_replays: int = 0
    steps_replayed: int = 0  # simulation steps actually executed
    steps_saved: int = 0
    batched_rounds: int = 0
    batch_width: int = 0

    def absorb(self, other: "MoveStats") -> None:
        """Accumulate ``other`` into this instance (for run aggregates)."""
        self.moves_priced += other.moves_priced
        self.memo_hits += other.memo_hits
        self.pruned += other.pruned
        self.resumed += other.resumed
        self.full_replays += other.full_replays
        self.steps_replayed += other.steps_replayed
        self.steps_saved += other.steps_saved
        self.batched_rounds += other.batched_rounds
        self.batch_width += other.batch_width

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering for JSON reports."""
        return {
            "moves_priced": self.moves_priced,
            "memo_hits": self.memo_hits,
            "pruned": self.pruned,
            "resumed": self.resumed,
            "full_replays": self.full_replays,
            "steps_replayed": self.steps_replayed,
            "steps_saved": self.steps_saved,
            "batched_rounds": self.batched_rounds,
            "batch_width": self.batch_width,
        }


def _exclusive_max(values: list[int]) -> list[int]:
    """``out[i] = max(values[j] for j != i)`` (0 for a single element).

    O(n) via the top-two values: the exclusive max is the second-best for
    the (first) argmax and the best for everyone else — correct under
    ties, where the second-best equals the best.
    """
    if len(values) == 1:
        return [0]
    best = second = -1
    best_idx = -1
    for i, value in enumerate(values):
        if value > best:
            second = best
            best = value
            best_idx = i
        elif value > second:
            second = value
    return [second if i == best_idx else best for i in range(len(values))]


class MakespanEvaluator:
    """Fast makespan evaluation for the HAP solver's single-move trials.

    The HAP inner loop evaluates thousands of single-layer moves per
    solve, and each move only needs the *makespan* of the trial
    assignment — not the full per-layer schedule.  This evaluator replays
    the exact ``"earliest_start"`` simulation of :func:`list_schedule`
    (same priority key, same tie-breaking) but

    - reads durations from pre-extracted Python ``int`` tables instead of
      per-element NumPy indexing,
    - allocates no :class:`ScheduledLayer`/:class:`Schedule` objects,
    - memoises exact makespans per assignment (hill-climbing revisits
      the same trial assignments across iterations),
    - supports a ``cutoff`` for early exit: as soon as the partial
      simulation proves ``makespan > cutoff`` it returns ``cutoff + 1``
      (a certified lower bound) without finishing the replay, and
    - (``resume=True``) prices single-layer moves from an incumbent base
      assignment by **delta-resume**: :meth:`rebase` records a snapshot
      of the simulator state before every event of the base replay, and
      :meth:`trial_move` replays only from the first event at which the
      moved layer becomes schedulable (its chain predecessor's event) —
      the prefix is provably identical because a layer's slot is never
      read before it is its chain's head.  Trials are additionally
      pre-filtered by two certified lower bounds (per-slot load and
      per-chain serial work): a move whose bound already exceeds the
      cutoff is skipped without simulating at all.

    Exactness contract: for any assignment, ``makespan(a)`` (no cutoff)
    equals ``list_schedule(problem, a).makespan`` bit-for-bit; for any
    cutoff, a returned value ``<= cutoff`` is exact and a returned value
    ``> cutoff`` certifies the true makespan exceeds the cutoff.  The
    same contract holds for :meth:`trial_move` (including pruned moves —
    the lower bounds hold for *any* schedule, since a sub-accelerator
    runs one layer at a time and a chain is serial).
    ``tests/test_hap_properties.py`` holds all of this against the full
    rescheduling oracle on random instances.
    """

    def __init__(self, problem: MappingProblem, *,
                 resume: bool = True) -> None:
        self._durations: list[list[int]] = problem.durations.tolist()
        self._chains = tuple(tuple(c) for c in problem.chains)
        self._chain_lens = tuple(len(c) for c in problem.chains)
        self._chain_of = tuple(problem.layer_net)
        self._num_slots = problem.num_slots
        self._num_layers = problem.num_layers
        self._resume = resume
        self._memo: dict[tuple[int, ...], int] = {}
        self.evaluations = 0
        self.memo_hits = 0
        self.stats = MoveStats()
        # Structure-of-arrays state for the batched kernel
        # (:meth:`trial_moves` / :meth:`move_lower_bounds`).  Both caches
        # are built lazily so scalar-only solves pay nothing:
        # ``_batch_static`` holds per-instance constants, ``_batch_base``
        # per-incumbent arrays (invalidated by every rebase).
        self._durations_arr = problem.durations
        self._batch_static: tuple | None = None
        self._batch_base: tuple | None = None
        # Base-assignment state (populated by rebase).  Snapshots are flat
        # per-step slabs: step t's simulator state lives at
        # [t*num_nets : (t+1)*num_nets] of _snap_next/_snap_ready and
        # [t*num_slots : (t+1)*num_slots] of _snap_free.
        self._base: list[int] | None = None
        self._base_tuple: tuple[int, ...] | None = None
        self._base_makespan = 0
        self._snap_next: list[int] = []
        self._snap_ready: list[int] = []
        self._snap_free: list[int] = []
        self._snap_maxfin: list[int] = []
        #: Per-step cumulative work completed on each slot before event
        #: t (same layout as _snap_free) — the slot-remaining prune term.
        self._snap_done: list[int] = []
        self._resume_step: list[int] = [0] * problem.num_layers
        self._slot_loads: list[int] = []
        self._chain_work: list[int] = []
        self._chain_excl: list[int] = []
        #: Per-layer serial work of the layer and its chain successors
        #: under the base assignment (the chain-tail prune term).
        self._rem_work: list[int] = []

    def makespan(self, assignment: tuple[int, ...],
                 *, cutoff: int | None = None) -> int:
        """Makespan of ``assignment``; exact whenever the result <= cutoff."""
        exact = self._memo.get(assignment)
        if exact is not None:
            self.memo_hits += 1
            self.stats.memo_hits += 1
            return exact
        self.evaluations += 1
        self.stats.full_replays += 1
        chains = self._chains
        durations = self._durations
        num_nets = len(chains)
        next_idx = [0] * num_nets
        net_ready = [0] * num_nets
        slot_free = [0] * self._num_slots
        remaining = self._num_layers
        max_finish = 0
        stats = self.stats
        while remaining:
            best_start = -1
            best_net = -1
            for net in range(num_nets):
                idx = next_idx[net]
                chain = chains[net]
                if idx >= len(chain):
                    continue
                ready = net_ready[net]
                free = slot_free[assignment[chain[idx]]]
                start = ready if ready >= free else free
                if best_net < 0 or start < best_start:
                    best_start = start
                    best_net = net
            # Certified bound: every remaining layer starts at or after
            # best_start, so the final makespan is at least best_start.
            if cutoff is not None and best_start > cutoff:
                return cutoff + 1
            chain = chains[best_net]
            flat_id = chain[next_idx[best_net]]
            slot = assignment[flat_id]
            finish = best_start + durations[flat_id][slot]
            net_ready[best_net] = finish
            slot_free[slot] = finish
            if finish > max_finish:
                max_finish = finish
                if cutoff is not None and max_finish > cutoff:
                    return cutoff + 1
            next_idx[best_net] += 1
            remaining -= 1
            stats.steps_replayed += 1
        self._memo[assignment] = max_finish
        return max_finish

    # ------------------------------------------------------------------
    # Delta-resume move pricing
    # ------------------------------------------------------------------
    def rebase(self, assignment: tuple[int, ...]) -> int:
        """Adopt ``assignment`` as the incumbent base and return its exact
        makespan.

        Records, along the replay, per-event simulator snapshots (for
        :meth:`trial_move` resumption), each layer's first-schedulable
        event index, per-slot loads and per-chain serial works (for the
        certified prune bounds).  Rebasing onto a single-layer move of
        the current base resumes the recording from the moved layer's
        snapshot instead of replaying from cycle 0 (the prefix is
        provably unchanged), which is the common case after the solver
        accepts a move.
        """
        if not self._resume:
            # PR-1 baseline mode: no recording — the re-evaluation is a
            # memo hit whenever the adopted assignment was priced exactly.
            self._base = list(assignment)
            self._base_tuple = tuple(assignment)
            return self.makespan(assignment)
        old = self._base_tuple
        if old == assignment:
            return self._base_makespan
        start_step = 0
        if old is not None:
            moved = [f for f, (a, b) in enumerate(zip(old, assignment))
                     if a != b]
            if len(moved) == 1:
                flat_id = moved[0]
                start_step = self._resume_step[flat_id]
                # O(1) updates of the prune-bound tables for the move.
                row = self._durations[flat_id]
                d_u = row[old[flat_id]]
                d_v = row[assignment[flat_id]]
                self._slot_loads[old[flat_id]] -= d_u
                self._slot_loads[assignment[flat_id]] += d_v
                chain_id = self._chain_of[flat_id]
                works = self._chain_work
                works[chain_id] += d_v - d_u
                self._chain_excl = _exclusive_max(works)
                # The moved layer and its predecessors see the changed
                # duration in their chain tails.
                rem = self._rem_work
                delta = d_v - d_u
                for fid in self._chains[chain_id]:
                    rem[fid] += delta
                    if fid == flat_id:
                        break
        makespan = self._recorded_replay(assignment, start_step)
        if start_step == 0:
            durations = self._durations
            loads = [0] * self._num_slots
            for flat_id in range(self._num_layers):
                loads[assignment[flat_id]] += (
                    durations[flat_id][assignment[flat_id]])
            works = [sum(durations[f][assignment[f]] for f in chain)
                     for chain in self._chains]
            self._chain_excl = _exclusive_max(works)
            self._chain_work = works
            self._slot_loads = loads
            rem = [0] * self._num_layers
            for chain in self._chains:
                acc = 0
                for fid in reversed(chain):
                    acc += durations[fid][assignment[fid]]
                    rem[fid] = acc
            self._rem_work = rem
        self._base = list(assignment)
        self._base_tuple = tuple(assignment)
        self._base_makespan = makespan
        self._memo[self._base_tuple] = makespan
        self._batch_base = None
        return makespan

    def _recorded_replay(self, assignment: tuple[int, ...],
                         start_step: int) -> int:
        """Replay ``assignment`` from snapshot ``start_step`` (0 = from
        scratch), re-recording snapshots and resume steps for the suffix.

        Valid only when the simulation prefix ``[0, start_step)`` under
        ``assignment`` matches the recorded one (guaranteed by the
        caller: either ``start_step == 0``, or ``assignment`` differs
        from the recorded base by one layer whose first-schedulable event
        is ``start_step``).  Prefix snapshots and the resume steps of
        layers whose predecessors were scheduled in the prefix stay
        valid verbatim.
        """
        chains = self._chains
        chain_lens = self._chain_lens
        durations = self._durations
        num_nets = len(chains)
        num_layers = self._num_layers
        num_slots = self._num_slots
        snap_next = self._snap_next
        snap_ready = self._snap_ready
        snap_free = self._snap_free
        snap_maxfin = self._snap_maxfin
        snap_done = self._snap_done
        if start_step == 0:
            next_idx = [0] * num_nets
            net_ready = [0] * num_nets
            slot_free = [0] * num_slots
            slot_done = [0] * num_slots
            max_finish = 0
            del snap_next[:], snap_ready[:], snap_free[:], snap_maxfin[:]
            del snap_done[:]
        else:
            net_base = start_step * num_nets
            slot_base = start_step * num_slots
            next_idx = snap_next[net_base:net_base + num_nets]
            net_ready = snap_ready[net_base:net_base + num_nets]
            slot_free = snap_free[slot_base:slot_base + num_slots]
            slot_done = snap_done[slot_base:slot_base + num_slots]
            max_finish = snap_maxfin[start_step]
            del snap_next[net_base:]
            del snap_ready[net_base:]
            del snap_free[slot_base:]
            del snap_done[slot_base:]
            del snap_maxfin[start_step:]
        resume_step = self._resume_step
        self.evaluations += 1
        if start_step == 0:
            self.stats.full_replays += 1
        else:
            self.stats.resumed += 1
            self.stats.steps_saved += start_step
        self.stats.steps_replayed += num_layers - start_step
        for step in range(start_step, num_layers):
            snap_next.extend(next_idx)
            snap_ready.extend(net_ready)
            snap_free.extend(slot_free)
            snap_done.extend(slot_done)
            snap_maxfin.append(max_finish)
            best_start = -1
            best_net = -1
            for net in range(num_nets):
                idx = next_idx[net]
                if idx >= chain_lens[net]:
                    continue
                ready = net_ready[net]
                free = slot_free[assignment[chains[net][idx]]]
                start = ready if ready >= free else free
                if best_net < 0 or start < best_start:
                    best_start = start
                    best_net = net
            chain = chains[best_net]
            flat_id = chain[next_idx[best_net]]
            slot = assignment[flat_id]
            dur = durations[flat_id][slot]
            finish = best_start + dur
            net_ready[best_net] = finish
            slot_free[slot] = finish
            slot_done[slot] += dur
            if finish > max_finish:
                max_finish = finish
            next_idx[best_net] += 1
            # The successor becomes consultable only after this event, so
            # a move of it leaves the replay prefix [0, step] untouched.
            nxt = next_idx[best_net]
            if nxt < chain_lens[best_net]:
                resume_step[chain[nxt]] = step + 1
        return max_finish

    def move_lower_bound(self, flat_id: int, pos: int) -> int:
        """Certified lower bound on the makespan of the base assignment
        with ``flat_id`` moved to slot position ``pos``.

        The maximum of the trial's per-slot loads and per-chain serial
        works — every schedule runs one layer per sub-accelerator at a
        time and a chain serially, so any schedule's makespan is at
        least this bound.  In resume mode four snapshot terms replace
        and dominate the load term, all certified by prefix identity
        (the trial replay equals the base replay before the move's
        resume step ``rs``, where the moved layer first heads its
        chain):

        - the recorded *prefix makespan* at ``rs`` — every prefix
          finish time is a finish time of the trial schedule;
        - the *chain tail*: the moved layer starts no earlier than
          ``max(chain ready, target-slot free)`` at ``rs``, and its
          chain's remaining work runs serially after that;
        - *slot remaining*: a slot cannot finish before its prefix
          free time plus its remaining trial work (this dominates the
          plain load bound per slot, since free >= done);
        - *other chains' tails*: every other chain's head starts no
          earlier than its recorded ready time at ``rs``, and its
          remaining serial work follows (an exhausted chain's ready
          time is a prefix finish time, dominated by the prefix term).

        O(slots + chains); requires a prior :meth:`rebase`.
        """
        base = self._base
        if base is None:
            raise RuntimeError("move_lower_bound requires a prior rebase()")
        row = self._durations[flat_id]
        u = base[flat_id]
        d_u = row[u]
        d_v = row[pos]
        chain_id = self._chain_of[flat_id]
        lb = self._chain_work[chain_id] - d_u + d_v
        excl = self._chain_excl[chain_id]
        if excl > lb:
            lb = excl
        if not self._resume:
            for j, load in enumerate(self._slot_loads):
                if j == u:
                    load -= d_u
                elif j == pos:
                    load += d_v
                if load > lb:
                    lb = load
            return lb
        num_nets = len(self._chains)
        num_slots = self._num_slots
        rs = self._resume_step[flat_id]
        prefix = self._snap_maxfin[rs]
        if prefix > lb:
            lb = prefix
        net_base = rs * num_nets
        slot_base = rs * num_slots
        ready = self._snap_ready[net_base + chain_id]
        free = self._snap_free[slot_base + pos]
        tail = ((ready if ready >= free else free)
                + self._rem_work[flat_id] - d_u + d_v)
        if tail > lb:
            lb = tail
        snap_free = self._snap_free
        snap_done = self._snap_done
        for j, load in enumerate(self._slot_loads):
            if j == u:
                load -= d_u
            elif j == pos:
                load += d_v
            t = snap_free[slot_base + j] + load - snap_done[slot_base + j]
            if t > lb:
                lb = t
        snap_next = self._snap_next
        snap_ready = self._snap_ready
        chains = self._chains
        chain_lens = self._chain_lens
        rem = self._rem_work
        for c in range(num_nets):
            if c == chain_id:
                continue
            idx = snap_next[net_base + c]
            if idx >= chain_lens[c]:
                continue
            t = snap_ready[net_base + c] + rem[chains[c][idx]]
            if t > lb:
                lb = t
        return lb

    def trial_move(self, flat_id: int, pos: int,
                   *, cutoff: int | None = None,
                   lower_bound: int | None = None) -> int:
        """Makespan of the base assignment with ``flat_id`` moved to slot
        position ``pos``; same cutoff/exactness contract as
        :meth:`makespan`.  Requires a prior :meth:`rebase`.

        ``lower_bound`` lets a caller that already ran
        :meth:`move_lower_bound` for this move (the sorted feasibility
        scan) skip the redundant recompute; it must be that method's
        value for the same ``(flat_id, pos)`` under the current base.
        """
        base = self._base
        if base is None:
            raise RuntimeError("trial_move requires a prior rebase()")
        row = self._durations[flat_id]
        u = base[flat_id]
        d_u = row[u]
        d_v = row[pos]
        stats = self.stats
        stats.moves_priced += 1
        if not self._resume:
            base_tuple = self._base_tuple
            trial = base_tuple[:flat_id] + (pos,) + base_tuple[flat_id + 1:]
            return self.makespan(trial, cutoff=cutoff)
        if cutoff is not None:
            # Certified lower bounds on the trial makespan: a slot's total
            # load and a chain's serial work both fit inside any schedule.
            if lower_bound is not None:
                lb = lower_bound
            else:
                # Cheapest certified terms first (see move_lower_bound):
                # the O(1) snapshot terms, then the O(slots) and
                # O(chains) scans only when they have not already pruned.
                nets = len(self._chains)
                slots = self._num_slots
                rs = self._resume_step[flat_id]
                net_base = rs * nets
                slot_base = rs * slots
                lb = self._snap_maxfin[rs]
                chain_id = self._chain_of[flat_id]
                ready = self._snap_ready[net_base + chain_id]
                free = self._snap_free[slot_base + pos]
                tail = ((ready if ready >= free else free)
                        + self._rem_work[flat_id] - d_u + d_v)
                if tail > lb:
                    lb = tail
                work = self._chain_work[chain_id] - d_u + d_v
                if work > lb:
                    lb = work
                excl = self._chain_excl[chain_id]
                if excl > lb:
                    lb = excl
                if lb <= cutoff:
                    snap_free = self._snap_free
                    snap_done = self._snap_done
                    for j, load in enumerate(self._slot_loads):
                        if j == u:
                            load -= d_u
                        elif j == pos:
                            load += d_v
                        t = (snap_free[slot_base + j] + load
                             - snap_done[slot_base + j])
                        if t > lb:
                            lb = t
                if lb <= cutoff:
                    snap_next = self._snap_next
                    snap_ready = self._snap_ready
                    chains = self._chains
                    chain_lens = self._chain_lens
                    rem = self._rem_work
                    for c in range(nets):
                        if c == chain_id:
                            continue
                        idx = snap_next[net_base + c]
                        if idx >= chain_lens[c]:
                            continue
                        t = snap_ready[net_base + c] + rem[chains[c][idx]]
                        if t > lb:
                            lb = t
            if lb > cutoff:
                stats.pruned += 1
                return cutoff + 1
        # Delta-resume: restart the recorded base replay at the first
        # event where the moved layer is consultable.
        start_step = self._resume_step[flat_id]
        num_nets = len(self._chains)
        num_slots = self._num_slots
        net_base = start_step * num_nets
        slot_base = start_step * num_slots
        next_idx = self._snap_next[net_base:net_base + num_nets]
        net_ready = self._snap_ready[net_base:net_base + num_nets]
        slot_free = self._snap_free[slot_base:slot_base + num_slots]
        max_finish = self._snap_maxfin[start_step]
        suffix = self._num_layers - start_step
        remaining = suffix
        stats.resumed += 1
        stats.steps_saved += start_step
        self.evaluations += 1
        chains = self._chains
        chain_lens = self._chain_lens
        durations = self._durations
        assignment = base
        assignment[flat_id] = pos
        if cutoff is not None:
            # Running certified abort terms, maintained per event: a
            # slot's remaining trial work still runs serially on it and
            # cannot start before the slot's current free time; a
            # chain's remaining serial work likewise follows its current
            # ready time.  Far tighter than waiting for max_finish
            # itself to cross the cutoff (most replays otherwise run
            # ~90% of their suffix before aborting).
            loads = self._slot_loads
            snap_done = self._snap_done
            rem_slot = [loads[j] - snap_done[slot_base + j]
                        for j in range(num_slots)]
            rem_slot[u] -= d_u
            rem_slot[pos] += d_v
            rem_work = self._rem_work
            rem_chain = [0] * num_nets
            for c in range(num_nets):
                idx = next_idx[c]
                if idx < chain_lens[c]:
                    rem_chain[c] = rem_work[chains[c][idx]]
            rem_chain[self._chain_of[flat_id]] += d_v - d_u
        try:
            while remaining:
                best_start = -1
                best_net = -1
                for net in range(num_nets):
                    idx = next_idx[net]
                    if idx >= chain_lens[net]:
                        continue
                    ready = net_ready[net]
                    free = slot_free[assignment[chains[net][idx]]]
                    start = ready if ready >= free else free
                    if best_net < 0 or start < best_start:
                        best_start = start
                        best_net = net
                if cutoff is not None and best_start > cutoff:
                    return cutoff + 1
                chain = chains[best_net]
                fid = chain[next_idx[best_net]]
                slot = assignment[fid]
                dur = durations[fid][slot]
                finish = best_start + dur
                net_ready[best_net] = finish
                slot_free[slot] = finish
                if finish > max_finish:
                    max_finish = finish
                if cutoff is not None:
                    t = rem_slot[slot] = rem_slot[slot] - dur
                    t2 = rem_chain[best_net] = rem_chain[best_net] - dur
                    if t2 > t:
                        t = t2
                    if finish + t > cutoff:
                        return cutoff + 1
                next_idx[best_net] += 1
                remaining -= 1
        finally:
            assignment[flat_id] = u
            # Count completed steps only (cutoff exits leave remaining > 0),
            # matching makespan()'s per-step accounting.
            stats.steps_replayed += suffix - remaining
        return max_finish

    # ------------------------------------------------------------------
    # Batched (structure-of-arrays) move pricing
    # ------------------------------------------------------------------
    def snapshot_matrix(self) -> tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
        """The recorded per-event snapshots as 2-D matrices.

        Returns ``(next_idx, net_ready, slot_free, max_finish)`` where
        row ``t`` of each matrix is the simulator state *before* event
        ``t`` of the recorded base replay — the same data the scalar
        :meth:`trial_move` resumes from, viewed as arrays (the flat
        slabs are the backing store; the views are fresh copies).
        Requires a prior :meth:`rebase` in resume mode.
        """
        if self._base is None or not self._resume:
            raise RuntimeError(
                "snapshot_matrix requires a prior rebase() in resume mode")
        num_nets = len(self._chains)
        steps = len(self._snap_maxfin)
        return (
            np.asarray(self._snap_next, dtype=np.int64)
            .reshape(steps, num_nets),
            np.asarray(self._snap_ready, dtype=np.int64)
            .reshape(steps, num_nets),
            np.asarray(self._snap_free, dtype=np.int64)
            .reshape(steps, self._num_slots),
            np.asarray(self._snap_maxfin, dtype=np.int64),
        )

    def _ensure_batch_static(self) -> tuple:
        """Per-instance constants of the batched kernel, built lazily so
        scalar-only solves pay nothing.

        The chain table is padded with a sentinel layer id
        ``num_layers``: an exhausted chain's head resolves to the
        sentinel, which is pinned (in :meth:`_ensure_batch_base`) to a
        sentinel slot whose free time is huge, so exhausted chains lose
        every argmin without a per-step mask.
        """
        st = self._batch_static
        if st is None:
            num_nets = len(self._chains)
            num_layers = self._num_layers
            max_len = max(self._chain_lens) if num_nets else 0
            pad = np.full((num_nets, max_len + 1), num_layers,
                          dtype=np.int64)
            for net, chain in enumerate(self._chains):
                pad[net, :len(chain)] = chain
            st = (
                pad.reshape(-1),
                np.arange(num_nets, dtype=np.int64) * (max_len + 1),
                np.asarray(self._durations_arr, dtype=np.int64),
                np.asarray(self._chain_of, dtype=np.int64),
            )
            self._batch_static = st
        return st

    def _ensure_batch_base(self) -> tuple:
        """Per-incumbent arrays of the batched kernel (lazy; dropped by
        every :meth:`rebase` so they always mirror the scalar tables)."""
        bc = self._batch_base
        if bc is None:
            pad, pad_off, dur, _ = self._ensure_batch_static()
            base_arr = np.asarray(self._base, dtype=np.int64)
            dur_base = dur[np.arange(self._num_layers), base_arr]
            loads_arr = np.asarray(self._slot_loads, dtype=np.int64)
            snap = ()
            if self._resume:
                # Snapshot prune terms (see move_lower_bound): prefix
                # makespans, flat ready/free slabs, per-layer chain-tail
                # works, plus the per-step matrices behind the
                # slot-remaining and other-chain-tail bounds.
                num_nets = len(self._chains)
                num_slots = self._num_slots
                steps = len(self._snap_maxfin)
                ready_flat = np.asarray(self._snap_ready, dtype=np.int64)
                free_flat = np.asarray(self._snap_free, dtype=np.int64)
                done_flat = np.asarray(self._snap_done, dtype=np.int64)
                rem_arr = np.asarray(self._rem_work, dtype=np.int64)
                # slot_rem[t, s]: slot s's prefix free time plus its
                # remaining base work after step t.
                slot_rem = (free_flat.reshape(steps, num_slots)
                            + loads_arr
                            - done_flat.reshape(steps, num_slots))
                # tails[t, c]: chain c's head ready time at step t plus
                # its remaining serial work (sentinel head -> rem 0, so
                # an exhausted chain contributes just its ready time —
                # a prefix finish time, dominated by the prefix term).
                next_mat = (np.asarray(self._snap_next, dtype=np.int64)
                            .reshape(steps, num_nets))
                heads = pad[pad_off[None, :] + next_mat]
                tails = (ready_flat.reshape(steps, num_nets)
                         + np.append(rem_arr, 0)[heads])
                tail_arg = tails.argmax(axis=1)
                rows = np.arange(steps)
                tail_max = tails[rows, tail_arg].copy()
                tails[rows, tail_arg] = -1
                tail_2nd = tails.max(axis=1)
                snap = (
                    np.asarray(self._snap_maxfin, dtype=np.int64),
                    ready_flat,
                    free_flat,
                    rem_arr,
                    slot_rem,
                    tail_max,
                    tail_arg,
                    tail_2nd,
                )
            bc = (
                base_arr,
                np.asarray(self._resume_step, dtype=np.int64),
                np.asarray(self._chain_work, dtype=np.int64),
                np.asarray(self._chain_excl, dtype=np.int64),
                loads_arr,
                dur_base,
                # Sentinel extensions: layer ``num_layers`` lives on
                # sentinel slot ``num_slots`` with duration 0.
                np.append(base_arr, self._num_slots),
                np.append(dur_base, 0),
            ) + snap
            self._batch_base = bc
        return bc

    def move_lower_bounds(self, flat_ids: np.ndarray,
                          positions: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`move_lower_bound` over move arrays.

        ``bounds[i]`` equals ``move_lower_bound(flat_ids[i],
        positions[i])`` bit for bit (pure int64 arithmetic on the same
        prune tables); requires ``positions[i] != base[flat_ids[i]]``
        for every move, and a prior :meth:`rebase`.
        """
        if self._base is None:
            raise RuntimeError("move_lower_bounds requires a prior rebase()")
        _, _, dur, chain_of = self._ensure_batch_static()
        bc = self._ensure_batch_base()
        base_arr, resume_arr, work, excl, loads, dur_base = bc[:6]
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        m = flat_ids.shape[0]
        cur = base_arr[flat_ids]
        d_u = dur_base[flat_ids]
        d_v = dur[flat_ids, positions]
        chain_ids = chain_of[flat_ids]
        bounds = np.maximum(work[chain_ids] - d_u + d_v, excl[chain_ids])
        rows = np.arange(m)
        if not self._resume:
            trial_loads = np.repeat(loads[None, :], m, axis=0)
            trial_loads[rows, cur] -= d_u
            trial_loads[rows, positions] += d_v
            if m:
                np.maximum(bounds, trial_loads.max(axis=1), out=bounds)
            return bounds
        if m:
            # Snapshot terms (see move_lower_bound): the prefix makespan
            # at each move's resume step, the moved chain's tail from
            # its head's earliest start there, the per-slot remaining
            # work past each prefix, and the other chains' tails.
            rs = resume_arr[flat_ids]
            np.maximum(bounds, bc[8][rs], out=bounds)
            ready = bc[9][rs * len(self._chains) + chain_ids]
            free = bc[10][rs * self._num_slots + positions]
            tail = np.maximum(ready, free) + bc[11][flat_ids] - d_u + d_v
            np.maximum(bounds, tail, out=bounds)
            slot_rem = bc[12][rs]
            slot_rem[rows, cur] -= d_u
            slot_rem[rows, positions] += d_v
            np.maximum(bounds, slot_rem.max(axis=1), out=bounds)
            other = np.where(chain_ids == bc[14][rs], bc[15][rs],
                             bc[13][rs])
            np.maximum(bounds, other, out=bounds)
        return bounds

    def trial_moves(self, flat_ids: np.ndarray, positions: np.ndarray,
                    *, cutoff: int | None = None) -> np.ndarray:
        """Makespans of a batch of candidate single-layer moves, priced
        as lockstep array replays; same cutoff/exactness contract as
        :meth:`trial_move`, per column.

        Column ``i`` prices the base assignment with ``flat_ids[i]``
        moved to ``positions[i]``.  The batch is split into
        *resume-coherent waves* (columns whose resume steps lie close
        together); every column of a wave replays from the wave's
        earliest resume step.  This is exact for every member: a move's
        recorded prefix ``[0, start_step)`` is identical to its own
        replay (a layer's slot is never read before it is its chain's
        head, and ``start_step <= resume_step[i]``), and lockstep
        simulation from there is deterministic, so each column
        reproduces exactly what the scalar :meth:`trial_move` computes.
        The split matters for speed only: one chain-head move with
        resume step 0 must not force a whole wave of deep-resume moves
        to replay from cycle 0.

        Without a cutoff ``out[i]`` equals ``trial_move(flat_ids[i],
        positions[i])`` bit for bit; with a cutoff, ``out[i] <= cutoff``
        is exact and ``out[i] > cutoff`` certifies the true value
        exceeds the cutoff (a wave stops early once every column's
        running lower bound — ``max(max_finish, this step's chosen
        start)`` — exceeds it).  Property-tested against both the scalar
        path and the full rescheduling oracle.

        Requires resume mode, a prior :meth:`rebase`, and
        ``positions[i] != base[flat_ids[i]]`` for every move.
        """
        if self._base is None:
            raise RuntimeError("trial_moves requires a prior rebase()")
        if not self._resume:
            raise RuntimeError("trial_moves requires resume mode")
        bc = self._ensure_batch_base()
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        m = int(flat_ids.shape[0])
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        stats = self.stats
        stats.moves_priced += m
        stats.batched_rounds += 1
        stats.batch_width += m
        resume = bc[1][flat_ids]
        num_layers = self._num_layers
        num_nets = len(self._chains)
        # Deepest-first stable sort, cut into resume-coherent waves, then
        # price each wave through whichever engine its cost model says is
        # cheaper.  A lockstep step costs a fixed ~_STEP_RATIO scalar
        # step-events regardless of width (NumPy dispatch is the unit of
        # cost at these sizes, not FLOPs), so the array program wins
        # exactly when the wave's summed scalar suffixes exceed
        # ``(num_layers - wave_min_resume) * _STEP_RATIO`` plus setup —
        # wide waves of similar depth — and narrow or ragged waves keep
        # the scalar delta-resume path.  Both engines honour the same
        # cutoff/exactness contract, so the choice is invisible in the
        # results (property-tested).
        order = np.argsort(-resume, kind="stable")
        sorted_resume = resume[order]
        out = np.empty(m, dtype=np.int64)
        scalar_steps = num_nets  # per-event cost of one scalar step
        wave_start = 0
        wave_top = int(sorted_resume[0])
        for j in range(1, m + 1):
            if (j < m
                    and wave_top - int(sorted_resume[j])
                    <= self._WAVE_SPREAD):
                continue
            idx = order[wave_start:j]
            wave_lo = int(sorted_resume[j - 1])
            width = int(idx.shape[0])
            scalar_cost = (width * num_layers
                           - int(sorted_resume[wave_start:j].sum()))
            lockstep_cost = ((num_layers - wave_lo + self._WAVE_SETUP)
                             * self._STEP_RATIO // scalar_steps)
            if scalar_cost > lockstep_cost:
                out[idx] = self._lockstep_wave(
                    flat_ids[idx], positions[idx], wave_lo, cutoff)
            else:
                # trial_move counts each priced move itself; the batch
                # already counted the whole call.
                stats.moves_priced -= width
                for i in idx:
                    out[i] = self.trial_move(int(flat_ids[i]),
                                             int(positions[i]),
                                             cutoff=cutoff)
            if j < m:
                wave_start = j
                wave_top = int(sorted_resume[j])
        return out

    def batch_gain(self, flat_ids: np.ndarray) -> float:
        """Estimated cost ratio of scalar pricing over hybrid wave
        pricing for this move set, under the same cost model
        :meth:`trial_moves` routes with.

        ``> 1`` means handing the set to :meth:`trial_moves` should beat
        pricing the moves one at a time; callers that can do better than
        a plain scalar loop (e.g. the feasibility walk, whose shrinking
        cutoff the batch cannot see) should demand a margin above 1.
        Requires a prior :meth:`rebase` in resume mode.
        """
        bc = self._ensure_batch_base()
        resume = np.sort(bc[1][np.asarray(flat_ids, dtype=np.int64)])[::-1]
        m = int(resume.shape[0])
        if m == 0:
            return 1.0
        num_layers = self._num_layers
        num_nets = len(self._chains)
        scalar_cost = m * num_layers - int(resume.sum())
        hybrid = 0
        start = 0
        top = int(resume[0])
        for j in range(1, m + 1):
            if (j < m
                    and top - int(resume[j]) <= self._WAVE_SPREAD):
                continue
            seg = resume[start:j]
            seg_scalar = int(seg.shape[0]) * num_layers - int(seg.sum())
            seg_lock = ((num_layers - int(seg[-1]) + self._WAVE_SETUP)
                        * self._STEP_RATIO // num_nets)
            hybrid += min(seg_scalar, seg_lock)
            if j < m:
                start = j
                top = int(resume[j])
        return scalar_cost / max(hybrid, 1)

    #: Resume-step spread tolerated inside one lockstep wave; waves are
    #: cut where the spread would exceed it (see :meth:`trial_moves`).
    _WAVE_SPREAD = 4
    #: Calibrated cost of one lockstep array step, in units of scalar
    #: per-net step-events (NumPy dispatch overhead vs a tight Python
    #: inner loop; see the wave cost model in :meth:`trial_moves`).
    _STEP_RATIO = 60
    #: Fixed per-wave array-setup cost, in lockstep steps.
    _WAVE_SETUP = 3

    def _lockstep_wave(self, flat_ids: np.ndarray, positions: np.ndarray,
                       start_step: int, cutoff: int | None) -> np.ndarray:
        """Price one resume-coherent wave of moves from the recorded
        snapshot at ``start_step`` (callers guarantee ``start_step <=
        resume_step[flat_ids[i]]`` for every member).

        The per-column state lives in flat arrays indexed with
        precomputed row offsets (``.take`` beats 2-D fancy indexing by
        ~4x at these sizes, and the sentinel padding removes the
        exhausted-chain mask), because on the small instances the paper
        targets the kernel is NumPy-dispatch-bound, not FLOP-bound.
        """
        chain_pad_flat, net_off, dur, _ = self._ensure_batch_static()
        bc = self._batch_base
        stats = self.stats
        m = int(flat_ids.shape[0])
        num_nets = len(self._chains)
        num_slots = self._num_slots
        num_layers = self._num_layers
        nb = start_step * num_nets
        sb = start_step * num_slots
        s1 = num_slots + 1
        l1 = num_layers + 1
        huge = 1 << 62
        # Flat per-column state seeded from the shared snapshot row.
        pos0 = np.asarray(self._snap_next[nb:nb + num_nets],
                          dtype=np.int64)
        pos0 += net_off
        pos_flat = np.tile(pos0, m)
        ready = np.tile(np.asarray(self._snap_ready[nb:nb + num_nets],
                                   dtype=np.int64), m)
        free_row = np.empty(s1, dtype=np.int64)
        free_row[:num_slots] = self._snap_free[sb:sb + num_slots]
        free_row[num_slots] = huge
        free = np.tile(free_row, m)
        ar = np.arange(m, dtype=np.int64)
        rows_net = ar * num_nets
        rows_slot = ar * s1
        rows_layer = ar * l1
        rows_layer_n = np.repeat(rows_layer, num_nets)
        rows_slot_n = np.repeat(rows_slot, num_nets)
        assign_flat = np.tile(bc[6], m)
        assign_flat[rows_layer + flat_ids] = positions
        dur_flat = np.tile(bc[7], m)
        dur_flat[rows_layer + flat_ids] = dur[flat_ids, positions]
        max_fin = np.full(m, self._snap_maxfin[start_step], dtype=np.int64)
        self.evaluations += m
        if start_step:
            stats.resumed += m
            stats.steps_saved += start_step * m
        else:
            stats.full_replays += m
        steps = num_layers - start_step
        done = 0
        while done < steps:
            heads = chain_pad_flat.take(pos_flat)           # (m*nets,)
            head_slot = assign_flat.take(rows_layer_n + heads)
            start = np.maximum(ready, free.take(rows_slot_n + head_slot))
            # First-min argmin matches the scalar tie-break (first net
            # with a strictly smaller start wins).
            best = np.argmin(start.reshape(m, num_nets), axis=1)
            sel = rows_net + best
            s_b = start.take(sel)
            h_b = heads.take(sel)
            fin = s_b + dur_flat.take(rows_layer + h_b)
            ready[sel] = fin
            free[rows_slot + head_slot.take(sel)] = fin
            np.maximum(max_fin, fin, out=max_fin)
            pos_flat[sel] += 1
            done += 1
            if (cutoff is not None
                    and int(np.maximum(max_fin, s_b).min()) > cutoff):
                # Every remaining event of a column starts at or after
                # its chosen start this step, so each column's true
                # makespan is at least max(max_finish, s_b) — the whole
                # batch is certified above the cutoff.
                stats.steps_replayed += done * m
                return np.full(m, cutoff + 1, dtype=np.int64)
        stats.steps_replayed += steps * m
        return max_fin


def _remaining_chain_work(problem: MappingProblem) -> list[int]:
    """Best-case remaining work (suffix sum of per-layer min durations)."""
    best = np.min(problem.durations, axis=1)
    remaining = [0] * problem.num_layers
    for chain in problem.chains:
        tail = 0
        for flat_id in reversed(chain):
            tail += int(best[flat_id])
            remaining[flat_id] = tail
    return remaining


def list_schedule(problem: MappingProblem,
                  assignment: tuple[int, ...],
                  *, policy: str = "earliest_start",
                  validate: bool = True) -> Schedule:
    """Schedule ``assignment`` under the chosen list-scheduling policy.

    ``validate=False`` skips the assignment check for callers that
    produced the assignment themselves (the HAP solver); public callers
    keep the default.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {POLICIES}")
    if validate:
        problem.validate_assignment(assignment)
    num_nets = len(problem.chains)
    durations = problem.durations.tolist()  # bulk convert: no per-step
    chains = problem.chains                 # NumPy scalar boxing below
    next_idx = [0] * num_nets           # next chain position per network
    net_ready = [0] * num_nets          # finish time of previous layer
    slot_free = [0] * problem.num_slots
    remaining_work = (_remaining_chain_work(problem)
                      if policy == "critical_path" else None)
    entries: list[ScheduledLayer] = []
    remaining = problem.num_layers
    while remaining:
        best: tuple | None = None       # (start, tiebreak..., net, flat_id)
        for net in range(num_nets):
            chain = chains[net]
            if next_idx[net] >= len(chain):
                continue
            flat_id = chain[next_idx[net]]
            slot_pos = assignment[flat_id]
            start = max(net_ready[net], slot_free[slot_pos])
            if policy == "lpt":
                tiebreak = -durations[flat_id][slot_pos]
            elif policy == "critical_path":
                tiebreak = -remaining_work[flat_id]
            else:
                tiebreak = 0
            key = (start, tiebreak, net, flat_id)
            if best is None or key < best:
                best = key
        assert best is not None, "unscheduled layers but none ready"
        start, _, net, flat_id = best
        slot_pos = assignment[flat_id]
        finish = start + durations[flat_id][slot_pos]
        entries.append(ScheduledLayer(flat_id, net, slot_pos, start, finish))
        net_ready[net] = finish
        slot_free[slot_pos] = finish
        next_idx[net] += 1
        remaining -= 1
    makespan = max(e.finish for e in entries)
    return Schedule(entries=tuple(entries), makespan=makespan)
