"""List scheduler for layers mapped onto sub-accelerators.

Given an assignment of layers to active sub-accelerators, the scheduler
determines execution order (the ``sch(aic_k)`` function of §III-➌) and the
resulting makespan.  Constraints:

- layers of one network form a chain: layer ``j`` cannot start before
  layer ``j-1`` finishes, regardless of where either is mapped;
- a sub-accelerator executes one layer at a time.

Three deterministic list-scheduling priority policies are provided (the
default matches the paper's needs; the others back the scheduling
ablation in ``benchmarks/bench_schedulers.py``):

- ``"earliest_start"`` (default): schedule the ready layer that can
  begin soonest, ties toward lower network index then lower flat id;
- ``"lpt"``: among equal start times, prefer the longest-processing
  layer (the classical LPT rule);
- ``"critical_path"``: among equal start times, prefer the layer whose
  remaining chain (priced at per-layer best-case durations) is longest.

Task-level parallelism across DNNs — the paper's motivation for
heterogeneous sub-accelerators — emerges naturally when different
networks occupy different sub-accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.problem import MappingProblem

__all__ = ["MakespanEvaluator", "MoveStats", "ScheduledLayer", "Schedule",
           "list_schedule", "POLICIES"]

#: Valid priority policies for :func:`list_schedule`.
POLICIES = ("earliest_start", "lpt", "critical_path")


@dataclass(frozen=True)
class ScheduledLayer:
    """One scheduled layer execution."""

    flat_id: int
    network: int
    slot_pos: int
    start: int
    finish: int


@dataclass(frozen=True)
class Schedule:
    """A complete schedule: per-layer timings plus the makespan."""

    entries: tuple[ScheduledLayer, ...]
    makespan: int

    def by_slot(self, slot_pos: int) -> tuple[ScheduledLayer, ...]:
        """Entries executed on one sub-accelerator, in start order."""
        return tuple(sorted(
            (e for e in self.entries if e.slot_pos == slot_pos),
            key=lambda e: e.start))

    def slot_busy_cycles(self, slot_pos: int) -> int:
        """Total busy time of one sub-accelerator."""
        return sum(e.finish - e.start for e in self.entries
                   if e.slot_pos == slot_pos)


@dataclass
class MoveStats:
    """Counters for HAP single-move pricing (observability, not logic).

    Attributes:
        moves_priced: ``trial_move`` requests.
        memo_hits: Trials answered from the exact-makespan memo.
        pruned: Trials skipped outright because a certified lower bound
            (per-slot load or per-chain serial work) already exceeded the
            cutoff — no simulation ran at all.
        resumed: Replays — trial moves and single-move rebases — that
            restarted from a recorded snapshot (the event where the moved
            layer first becomes schedulable) instead of from cycle 0.
        full_replays: Replays from cycle 0 (scratch rebases and
            ``makespan()``).
        steps_replayed: Simulation steps actually executed (cutoff
            early-exits stop counting where they stop simulating).
        steps_saved: Simulation steps skipped by delta-resume prefixes.
    """

    moves_priced: int = 0
    memo_hits: int = 0
    pruned: int = 0
    resumed: int = 0  # trials AND rebases that resumed mid-replay
    full_replays: int = 0
    steps_replayed: int = 0  # simulation steps actually executed
    steps_saved: int = 0

    def absorb(self, other: "MoveStats") -> None:
        """Accumulate ``other`` into this instance (for run aggregates)."""
        self.moves_priced += other.moves_priced
        self.memo_hits += other.memo_hits
        self.pruned += other.pruned
        self.resumed += other.resumed
        self.full_replays += other.full_replays
        self.steps_replayed += other.steps_replayed
        self.steps_saved += other.steps_saved

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering for JSON reports."""
        return {
            "moves_priced": self.moves_priced,
            "memo_hits": self.memo_hits,
            "pruned": self.pruned,
            "resumed": self.resumed,
            "full_replays": self.full_replays,
            "steps_replayed": self.steps_replayed,
            "steps_saved": self.steps_saved,
        }


def _exclusive_max(values: list[int]) -> list[int]:
    """``out[i] = max(values[j] for j != i)`` (0 for a single element).

    O(n) via the top-two values: the exclusive max is the second-best for
    the (first) argmax and the best for everyone else — correct under
    ties, where the second-best equals the best.
    """
    if len(values) == 1:
        return [0]
    best = second = -1
    best_idx = -1
    for i, value in enumerate(values):
        if value > best:
            second = best
            best = value
            best_idx = i
        elif value > second:
            second = value
    return [second if i == best_idx else best for i in range(len(values))]


class MakespanEvaluator:
    """Fast makespan evaluation for the HAP solver's single-move trials.

    The HAP inner loop evaluates thousands of single-layer moves per
    solve, and each move only needs the *makespan* of the trial
    assignment — not the full per-layer schedule.  This evaluator replays
    the exact ``"earliest_start"`` simulation of :func:`list_schedule`
    (same priority key, same tie-breaking) but

    - reads durations from pre-extracted Python ``int`` tables instead of
      per-element NumPy indexing,
    - allocates no :class:`ScheduledLayer`/:class:`Schedule` objects,
    - memoises exact makespans per assignment (hill-climbing revisits
      the same trial assignments across iterations),
    - supports a ``cutoff`` for early exit: as soon as the partial
      simulation proves ``makespan > cutoff`` it returns ``cutoff + 1``
      (a certified lower bound) without finishing the replay, and
    - (``resume=True``) prices single-layer moves from an incumbent base
      assignment by **delta-resume**: :meth:`rebase` records a snapshot
      of the simulator state before every event of the base replay, and
      :meth:`trial_move` replays only from the first event at which the
      moved layer becomes schedulable (its chain predecessor's event) —
      the prefix is provably identical because a layer's slot is never
      read before it is its chain's head.  Trials are additionally
      pre-filtered by two certified lower bounds (per-slot load and
      per-chain serial work): a move whose bound already exceeds the
      cutoff is skipped without simulating at all.

    Exactness contract: for any assignment, ``makespan(a)`` (no cutoff)
    equals ``list_schedule(problem, a).makespan`` bit-for-bit; for any
    cutoff, a returned value ``<= cutoff`` is exact and a returned value
    ``> cutoff`` certifies the true makespan exceeds the cutoff.  The
    same contract holds for :meth:`trial_move` (including pruned moves —
    the lower bounds hold for *any* schedule, since a sub-accelerator
    runs one layer at a time and a chain is serial).
    ``tests/test_hap_properties.py`` holds all of this against the full
    rescheduling oracle on random instances.
    """

    def __init__(self, problem: MappingProblem, *,
                 resume: bool = True) -> None:
        self._durations: list[list[int]] = problem.durations.tolist()
        self._chains = tuple(tuple(c) for c in problem.chains)
        self._chain_lens = tuple(len(c) for c in problem.chains)
        self._chain_of = tuple(problem.layer_net)
        self._num_slots = problem.num_slots
        self._num_layers = problem.num_layers
        self._resume = resume
        self._memo: dict[tuple[int, ...], int] = {}
        self.evaluations = 0
        self.memo_hits = 0
        self.stats = MoveStats()
        # Base-assignment state (populated by rebase).  Snapshots are flat
        # per-step slabs: step t's simulator state lives at
        # [t*num_nets : (t+1)*num_nets] of _snap_next/_snap_ready and
        # [t*num_slots : (t+1)*num_slots] of _snap_free.
        self._base: list[int] | None = None
        self._base_tuple: tuple[int, ...] | None = None
        self._base_makespan = 0
        self._snap_next: list[int] = []
        self._snap_ready: list[int] = []
        self._snap_free: list[int] = []
        self._snap_maxfin: list[int] = []
        self._resume_step: list[int] = [0] * problem.num_layers
        self._slot_loads: list[int] = []
        self._chain_work: list[int] = []
        self._chain_excl: list[int] = []

    def makespan(self, assignment: tuple[int, ...],
                 *, cutoff: int | None = None) -> int:
        """Makespan of ``assignment``; exact whenever the result <= cutoff."""
        exact = self._memo.get(assignment)
        if exact is not None:
            self.memo_hits += 1
            self.stats.memo_hits += 1
            return exact
        self.evaluations += 1
        self.stats.full_replays += 1
        chains = self._chains
        durations = self._durations
        num_nets = len(chains)
        next_idx = [0] * num_nets
        net_ready = [0] * num_nets
        slot_free = [0] * self._num_slots
        remaining = self._num_layers
        max_finish = 0
        stats = self.stats
        while remaining:
            best_start = -1
            best_net = -1
            for net in range(num_nets):
                idx = next_idx[net]
                chain = chains[net]
                if idx >= len(chain):
                    continue
                ready = net_ready[net]
                free = slot_free[assignment[chain[idx]]]
                start = ready if ready >= free else free
                if best_net < 0 or start < best_start:
                    best_start = start
                    best_net = net
            # Certified bound: every remaining layer starts at or after
            # best_start, so the final makespan is at least best_start.
            if cutoff is not None and best_start > cutoff:
                return cutoff + 1
            chain = chains[best_net]
            flat_id = chain[next_idx[best_net]]
            slot = assignment[flat_id]
            finish = best_start + durations[flat_id][slot]
            net_ready[best_net] = finish
            slot_free[slot] = finish
            if finish > max_finish:
                max_finish = finish
                if cutoff is not None and max_finish > cutoff:
                    return cutoff + 1
            next_idx[best_net] += 1
            remaining -= 1
            stats.steps_replayed += 1
        self._memo[assignment] = max_finish
        return max_finish

    # ------------------------------------------------------------------
    # Delta-resume move pricing
    # ------------------------------------------------------------------
    def rebase(self, assignment: tuple[int, ...]) -> int:
        """Adopt ``assignment`` as the incumbent base and return its exact
        makespan.

        Records, along the replay, per-event simulator snapshots (for
        :meth:`trial_move` resumption), each layer's first-schedulable
        event index, per-slot loads and per-chain serial works (for the
        certified prune bounds).  Rebasing onto a single-layer move of
        the current base resumes the recording from the moved layer's
        snapshot instead of replaying from cycle 0 (the prefix is
        provably unchanged), which is the common case after the solver
        accepts a move.
        """
        if not self._resume:
            # PR-1 baseline mode: no recording — the re-evaluation is a
            # memo hit whenever the adopted assignment was priced exactly.
            self._base = list(assignment)
            self._base_tuple = tuple(assignment)
            return self.makespan(assignment)
        old = self._base_tuple
        if old == assignment:
            return self._base_makespan
        start_step = 0
        if old is not None:
            moved = [f for f, (a, b) in enumerate(zip(old, assignment))
                     if a != b]
            if len(moved) == 1:
                flat_id = moved[0]
                start_step = self._resume_step[flat_id]
                # O(1) updates of the prune-bound tables for the move.
                row = self._durations[flat_id]
                d_u = row[old[flat_id]]
                d_v = row[assignment[flat_id]]
                self._slot_loads[old[flat_id]] -= d_u
                self._slot_loads[assignment[flat_id]] += d_v
                chain_id = self._chain_of[flat_id]
                works = self._chain_work
                works[chain_id] += d_v - d_u
                self._chain_excl = _exclusive_max(works)
        makespan = self._recorded_replay(assignment, start_step)
        if start_step == 0:
            durations = self._durations
            loads = [0] * self._num_slots
            for flat_id in range(self._num_layers):
                loads[assignment[flat_id]] += (
                    durations[flat_id][assignment[flat_id]])
            works = [sum(durations[f][assignment[f]] for f in chain)
                     for chain in self._chains]
            self._chain_excl = _exclusive_max(works)
            self._chain_work = works
            self._slot_loads = loads
        self._base = list(assignment)
        self._base_tuple = tuple(assignment)
        self._base_makespan = makespan
        self._memo[self._base_tuple] = makespan
        return makespan

    def _recorded_replay(self, assignment: tuple[int, ...],
                         start_step: int) -> int:
        """Replay ``assignment`` from snapshot ``start_step`` (0 = from
        scratch), re-recording snapshots and resume steps for the suffix.

        Valid only when the simulation prefix ``[0, start_step)`` under
        ``assignment`` matches the recorded one (guaranteed by the
        caller: either ``start_step == 0``, or ``assignment`` differs
        from the recorded base by one layer whose first-schedulable event
        is ``start_step``).  Prefix snapshots and the resume steps of
        layers whose predecessors were scheduled in the prefix stay
        valid verbatim.
        """
        chains = self._chains
        chain_lens = self._chain_lens
        durations = self._durations
        num_nets = len(chains)
        num_layers = self._num_layers
        num_slots = self._num_slots
        snap_next = self._snap_next
        snap_ready = self._snap_ready
        snap_free = self._snap_free
        snap_maxfin = self._snap_maxfin
        if start_step == 0:
            next_idx = [0] * num_nets
            net_ready = [0] * num_nets
            slot_free = [0] * num_slots
            max_finish = 0
            del snap_next[:], snap_ready[:], snap_free[:], snap_maxfin[:]
        else:
            net_base = start_step * num_nets
            slot_base = start_step * num_slots
            next_idx = snap_next[net_base:net_base + num_nets]
            net_ready = snap_ready[net_base:net_base + num_nets]
            slot_free = snap_free[slot_base:slot_base + num_slots]
            max_finish = snap_maxfin[start_step]
            del snap_next[net_base:]
            del snap_ready[net_base:]
            del snap_free[slot_base:]
            del snap_maxfin[start_step:]
        resume_step = self._resume_step
        self.evaluations += 1
        if start_step == 0:
            self.stats.full_replays += 1
        else:
            self.stats.resumed += 1
            self.stats.steps_saved += start_step
        self.stats.steps_replayed += num_layers - start_step
        for step in range(start_step, num_layers):
            snap_next.extend(next_idx)
            snap_ready.extend(net_ready)
            snap_free.extend(slot_free)
            snap_maxfin.append(max_finish)
            best_start = -1
            best_net = -1
            for net in range(num_nets):
                idx = next_idx[net]
                if idx >= chain_lens[net]:
                    continue
                ready = net_ready[net]
                free = slot_free[assignment[chains[net][idx]]]
                start = ready if ready >= free else free
                if best_net < 0 or start < best_start:
                    best_start = start
                    best_net = net
            chain = chains[best_net]
            flat_id = chain[next_idx[best_net]]
            slot = assignment[flat_id]
            finish = best_start + durations[flat_id][slot]
            net_ready[best_net] = finish
            slot_free[slot] = finish
            if finish > max_finish:
                max_finish = finish
            next_idx[best_net] += 1
            # The successor becomes consultable only after this event, so
            # a move of it leaves the replay prefix [0, step] untouched.
            nxt = next_idx[best_net]
            if nxt < chain_lens[best_net]:
                resume_step[chain[nxt]] = step + 1
        return max_finish

    def move_lower_bound(self, flat_id: int, pos: int) -> int:
        """Certified lower bound on the makespan of the base assignment
        with ``flat_id`` moved to slot position ``pos``.

        The maximum of the trial's per-slot loads and per-chain serial
        works — every schedule runs one layer per sub-accelerator at a
        time and a chain serially, so any schedule's makespan is at
        least this bound.  O(slots + chains); requires a prior
        :meth:`rebase`.
        """
        base = self._base
        if base is None:
            raise RuntimeError("move_lower_bound requires a prior rebase()")
        row = self._durations[flat_id]
        u = base[flat_id]
        d_u = row[u]
        d_v = row[pos]
        chain_id = self._chain_of[flat_id]
        lb = self._chain_work[chain_id] - d_u + d_v
        excl = self._chain_excl[chain_id]
        if excl > lb:
            lb = excl
        for j, load in enumerate(self._slot_loads):
            if j == u:
                load -= d_u
            elif j == pos:
                load += d_v
            if load > lb:
                lb = load
        return lb

    def trial_move(self, flat_id: int, pos: int,
                   *, cutoff: int | None = None,
                   lower_bound: int | None = None) -> int:
        """Makespan of the base assignment with ``flat_id`` moved to slot
        position ``pos``; same cutoff/exactness contract as
        :meth:`makespan`.  Requires a prior :meth:`rebase`.

        ``lower_bound`` lets a caller that already ran
        :meth:`move_lower_bound` for this move (the sorted feasibility
        scan) skip the redundant recompute; it must be that method's
        value for the same ``(flat_id, pos)`` under the current base.
        """
        base = self._base
        if base is None:
            raise RuntimeError("trial_move requires a prior rebase()")
        row = self._durations[flat_id]
        u = base[flat_id]
        d_u = row[u]
        d_v = row[pos]
        stats = self.stats
        stats.moves_priced += 1
        if not self._resume:
            base_tuple = self._base_tuple
            trial = base_tuple[:flat_id] + (pos,) + base_tuple[flat_id + 1:]
            return self.makespan(trial, cutoff=cutoff)
        if cutoff is not None:
            # Certified lower bounds on the trial makespan: a slot's total
            # load and a chain's serial work both fit inside any schedule.
            if lower_bound is not None:
                lb = lower_bound
            else:
                chain_id = self._chain_of[flat_id]
                lb = self._chain_work[chain_id] - d_u + d_v
                excl = self._chain_excl[chain_id]
                if excl > lb:
                    lb = excl
                if lb <= cutoff:
                    for j, load in enumerate(self._slot_loads):
                        if j == u:
                            load -= d_u
                        elif j == pos:
                            load += d_v
                        if load > lb:
                            lb = load
            if lb > cutoff:
                stats.pruned += 1
                return cutoff + 1
        # Delta-resume: restart the recorded base replay at the first
        # event where the moved layer is consultable.
        start_step = self._resume_step[flat_id]
        num_nets = len(self._chains)
        num_slots = self._num_slots
        net_base = start_step * num_nets
        slot_base = start_step * num_slots
        next_idx = self._snap_next[net_base:net_base + num_nets]
        net_ready = self._snap_ready[net_base:net_base + num_nets]
        slot_free = self._snap_free[slot_base:slot_base + num_slots]
        max_finish = self._snap_maxfin[start_step]
        suffix = self._num_layers - start_step
        remaining = suffix
        stats.resumed += 1
        stats.steps_saved += start_step
        self.evaluations += 1
        chains = self._chains
        chain_lens = self._chain_lens
        durations = self._durations
        assignment = base
        assignment[flat_id] = pos
        try:
            while remaining:
                best_start = -1
                best_net = -1
                for net in range(num_nets):
                    idx = next_idx[net]
                    if idx >= chain_lens[net]:
                        continue
                    ready = net_ready[net]
                    free = slot_free[assignment[chains[net][idx]]]
                    start = ready if ready >= free else free
                    if best_net < 0 or start < best_start:
                        best_start = start
                        best_net = net
                if cutoff is not None and best_start > cutoff:
                    return cutoff + 1
                chain = chains[best_net]
                fid = chain[next_idx[best_net]]
                slot = assignment[fid]
                finish = best_start + durations[fid][slot]
                net_ready[best_net] = finish
                slot_free[slot] = finish
                if finish > max_finish:
                    max_finish = finish
                    if cutoff is not None and max_finish > cutoff:
                        return cutoff + 1
                next_idx[best_net] += 1
                remaining -= 1
        finally:
            assignment[flat_id] = u
            # Count completed steps only (cutoff exits leave remaining > 0),
            # matching makespan()'s per-step accounting.
            stats.steps_replayed += suffix - remaining
        return max_finish


def _remaining_chain_work(problem: MappingProblem) -> list[int]:
    """Best-case remaining work (suffix sum of per-layer min durations)."""
    best = np.min(problem.durations, axis=1)
    remaining = [0] * problem.num_layers
    for chain in problem.chains:
        tail = 0
        for flat_id in reversed(chain):
            tail += int(best[flat_id])
            remaining[flat_id] = tail
    return remaining


def list_schedule(problem: MappingProblem,
                  assignment: tuple[int, ...],
                  *, policy: str = "earliest_start",
                  validate: bool = True) -> Schedule:
    """Schedule ``assignment`` under the chosen list-scheduling policy.

    ``validate=False`` skips the assignment check for callers that
    produced the assignment themselves (the HAP solver); public callers
    keep the default.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {POLICIES}")
    if validate:
        problem.validate_assignment(assignment)
    num_nets = len(problem.chains)
    durations = problem.durations.tolist()  # bulk convert: no per-step
    chains = problem.chains                 # NumPy scalar boxing below
    next_idx = [0] * num_nets           # next chain position per network
    net_ready = [0] * num_nets          # finish time of previous layer
    slot_free = [0] * problem.num_slots
    remaining_work = (_remaining_chain_work(problem)
                      if policy == "critical_path" else None)
    entries: list[ScheduledLayer] = []
    remaining = problem.num_layers
    while remaining:
        best: tuple | None = None       # (start, tiebreak..., net, flat_id)
        for net in range(num_nets):
            chain = chains[net]
            if next_idx[net] >= len(chain):
                continue
            flat_id = chain[next_idx[net]]
            slot_pos = assignment[flat_id]
            start = max(net_ready[net], slot_free[slot_pos])
            if policy == "lpt":
                tiebreak = -durations[flat_id][slot_pos]
            elif policy == "critical_path":
                tiebreak = -remaining_work[flat_id]
            else:
                tiebreak = 0
            key = (start, tiebreak, net, flat_id)
            if best is None or key < best:
                best = key
        assert best is not None, "unscheduled layers but none ready"
        start, _, net, flat_id = best
        slot_pos = assignment[flat_id]
        finish = start + durations[flat_id][slot_pos]
        entries.append(ScheduledLayer(flat_id, net, slot_pos, start, finish))
        net_ready[net] = finish
        slot_free[slot_pos] = finish
        next_idx[net] += 1
        remaining -= 1
    makespan = max(e.finish for e in entries)
    return Schedule(entries=tuple(entries), makespan=makespan)
