"""List scheduler for layers mapped onto sub-accelerators.

Given an assignment of layers to active sub-accelerators, the scheduler
determines execution order (the ``sch(aic_k)`` function of §III-➌) and the
resulting makespan.  Constraints:

- layers of one network form a chain: layer ``j`` cannot start before
  layer ``j-1`` finishes, regardless of where either is mapped;
- a sub-accelerator executes one layer at a time.

Three deterministic list-scheduling priority policies are provided (the
default matches the paper's needs; the others back the scheduling
ablation in ``benchmarks/bench_schedulers.py``):

- ``"earliest_start"`` (default): schedule the ready layer that can
  begin soonest, ties toward lower network index then lower flat id;
- ``"lpt"``: among equal start times, prefer the longest-processing
  layer (the classical LPT rule);
- ``"critical_path"``: among equal start times, prefer the layer whose
  remaining chain (priced at per-layer best-case durations) is longest.

Task-level parallelism across DNNs — the paper's motivation for
heterogeneous sub-accelerators — emerges naturally when different
networks occupy different sub-accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.problem import MappingProblem

__all__ = ["MakespanEvaluator", "ScheduledLayer", "Schedule",
           "list_schedule", "POLICIES"]

#: Valid priority policies for :func:`list_schedule`.
POLICIES = ("earliest_start", "lpt", "critical_path")


@dataclass(frozen=True)
class ScheduledLayer:
    """One scheduled layer execution."""

    flat_id: int
    network: int
    slot_pos: int
    start: int
    finish: int


@dataclass(frozen=True)
class Schedule:
    """A complete schedule: per-layer timings plus the makespan."""

    entries: tuple[ScheduledLayer, ...]
    makespan: int

    def by_slot(self, slot_pos: int) -> tuple[ScheduledLayer, ...]:
        """Entries executed on one sub-accelerator, in start order."""
        return tuple(sorted(
            (e for e in self.entries if e.slot_pos == slot_pos),
            key=lambda e: e.start))

    def slot_busy_cycles(self, slot_pos: int) -> int:
        """Total busy time of one sub-accelerator."""
        return sum(e.finish - e.start for e in self.entries
                   if e.slot_pos == slot_pos)


class MakespanEvaluator:
    """Fast makespan evaluation for the HAP solver's single-move trials.

    The HAP inner loop evaluates thousands of single-layer moves per
    solve, and each move only needs the *makespan* of the trial
    assignment — not the full per-layer schedule.  This evaluator replays
    the exact ``"earliest_start"`` simulation of :func:`list_schedule`
    (same priority key, same tie-breaking) but

    - reads durations from pre-extracted Python ``int`` tables instead of
      per-element NumPy indexing,
    - allocates no :class:`ScheduledLayer`/:class:`Schedule` objects,
    - memoises exact makespans per assignment (hill-climbing revisits
      the same trial assignments across iterations), and
    - supports a ``cutoff`` for early exit: as soon as the partial
      simulation proves ``makespan > cutoff`` it returns ``cutoff + 1``
      (a certified lower bound) without finishing the replay.

    Exactness contract: for any assignment, ``makespan(a)`` (no cutoff)
    equals ``list_schedule(problem, a).makespan`` bit-for-bit, and
    ``makespan(a, cutoff=c) <= c`` implies the returned value is exact.
    ``tests/test_hap_properties.py`` holds this against the full
    rescheduling oracle on random instances.
    """

    def __init__(self, problem: MappingProblem) -> None:
        self._durations: list[list[int]] = [
            [int(problem.durations[fid, pos])
             for pos in range(problem.num_slots)]
            for fid in range(problem.num_layers)]
        self._chains = tuple(tuple(c) for c in problem.chains)
        self._num_slots = problem.num_slots
        self._num_layers = problem.num_layers
        self._memo: dict[tuple[int, ...], int] = {}
        self.evaluations = 0
        self.memo_hits = 0

    def makespan(self, assignment: tuple[int, ...],
                 *, cutoff: int | None = None) -> int:
        """Makespan of ``assignment``; exact whenever the result <= cutoff."""
        exact = self._memo.get(assignment)
        if exact is not None:
            self.memo_hits += 1
            return exact
        self.evaluations += 1
        chains = self._chains
        durations = self._durations
        num_nets = len(chains)
        next_idx = [0] * num_nets
        net_ready = [0] * num_nets
        slot_free = [0] * self._num_slots
        remaining = self._num_layers
        max_finish = 0
        while remaining:
            best_start = -1
            best_net = -1
            for net in range(num_nets):
                idx = next_idx[net]
                chain = chains[net]
                if idx >= len(chain):
                    continue
                ready = net_ready[net]
                free = slot_free[assignment[chain[idx]]]
                start = ready if ready >= free else free
                if best_net < 0 or start < best_start:
                    best_start = start
                    best_net = net
            # Certified bound: every remaining layer starts at or after
            # best_start, so the final makespan is at least best_start.
            if cutoff is not None and best_start > cutoff:
                return cutoff + 1
            chain = chains[best_net]
            flat_id = chain[next_idx[best_net]]
            slot = assignment[flat_id]
            finish = best_start + durations[flat_id][slot]
            net_ready[best_net] = finish
            slot_free[slot] = finish
            if finish > max_finish:
                max_finish = finish
                if cutoff is not None and max_finish > cutoff:
                    return cutoff + 1
            next_idx[best_net] += 1
            remaining -= 1
        self._memo[assignment] = max_finish
        return max_finish


def _remaining_chain_work(problem: MappingProblem) -> list[int]:
    """Best-case remaining work (suffix sum of per-layer min durations)."""
    best = np.min(problem.durations, axis=1)
    remaining = [0] * problem.num_layers
    for chain in problem.chains:
        tail = 0
        for flat_id in reversed(chain):
            tail += int(best[flat_id])
            remaining[flat_id] = tail
    return remaining


def list_schedule(problem: MappingProblem,
                  assignment: tuple[int, ...],
                  *, policy: str = "earliest_start") -> Schedule:
    """Schedule ``assignment`` under the chosen list-scheduling policy."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {POLICIES}")
    problem.validate_assignment(assignment)
    num_nets = len(problem.chains)
    next_idx = [0] * num_nets           # next chain position per network
    net_ready = [0] * num_nets          # finish time of previous layer
    slot_free = [0] * problem.num_slots
    remaining_work = (_remaining_chain_work(problem)
                      if policy == "critical_path" else None)
    entries: list[ScheduledLayer] = []
    remaining = problem.num_layers
    while remaining:
        best: tuple | None = None       # (start, tiebreak..., net, flat_id)
        for net in range(num_nets):
            chain = problem.chains[net]
            if next_idx[net] >= len(chain):
                continue
            flat_id = chain[next_idx[net]]
            slot_pos = assignment[flat_id]
            start = max(net_ready[net], slot_free[slot_pos])
            if policy == "lpt":
                tiebreak = -int(problem.durations[flat_id, slot_pos])
            elif policy == "critical_path":
                tiebreak = -remaining_work[flat_id]
            else:
                tiebreak = 0
            key = (start, tiebreak, net, flat_id)
            if best is None or key < best:
                best = key
        assert best is not None, "unscheduled layers but none ready"
        start, _, net, flat_id = best
        slot_pos = assignment[flat_id]
        duration = int(problem.durations[flat_id, slot_pos])
        finish = start + duration
        entries.append(ScheduledLayer(flat_id, net, slot_pos, start, finish))
        net_ready[net] = finish
        slot_free[slot_pos] = finish
        next_idx[net] += 1
        remaining -= 1
    makespan = max(e.finish for e in entries)
    return Schedule(entries=tuple(entries), makespan=makespan)
