"""Heuristic HAP solver (the paper's choice, after Shao et al. [29]).

Given a :class:`~repro.mapping.problem.MappingProblem` and a latency
constraint ``LS``, minimise total energy subject to makespan <= ``LS``.
The paper notes ILP gives the optimum but is too slow inside the search
loop, so it "applies a heuristic approach in [29]"; we implement the same
two-phase ratio-greedy scheme:

1. **Feasibility phase** — seed with the per-layer minimum-latency
   assignment, then hill-climb single-layer moves that shrink the
   makespan until it fits ``LS`` (or no move helps).
2. **Energy refinement phase** — repeatedly apply the single-layer move
   with the best energy saving whose resulting makespan still fits
   ``LS`` (ties broken by smaller makespan growth), until no improving
   move remains.

The result reports the achieved makespan and energy even when infeasible,
so the evaluator can compute the paper's graded penalty (Eq. 3) instead of
rejecting outright.

Hot-path note: both phases evaluate ``num_layers * (num_slots - 1)``
single-layer moves per iteration, and this solver runs for every sampled
design of the search loop.  Four nested fast paths price those moves
(each provably choice-identical to the one below it, property-tested in
``tests/test_hap_properties.py``):

- ``incremental=True, resume=True, batched=True`` (default): each sweep
  is priced as **one array program** — a vectorised prune mask
  (:meth:`~repro.mapping.schedule.MakespanEvaluator.move_lower_bounds`)
  drops every move whose certified bound already disqualifies it, then
  one lockstep suffix replay over array columns
  (:meth:`~repro.mapping.schedule.MakespanEvaluator.trial_moves`)
  prices all survivors exactly, and the winner is the lexicographic
  minimum under the reference tie-break key.
- ``incremental=True, resume=True, batched=False``: scalar
  **delta-resume** — moves priced one at a time through
  :meth:`~repro.mapping.schedule.MakespanEvaluator.trial_move`, replays
  from the incumbent's recorded event list plus certified lower-bound
  pre-filters that skip moves provably above the cutoff; the refinement
  phase scans candidate moves in descending-saving order and stops at
  the first saving group containing a feasible move (moves with smaller
  savings can never win the ``(-saving, makespan)`` tie-break, so
  skipping them is exact).
- ``incremental=True, resume=False``: the PR-1 fast path — memoised
  full replays from cycle 0 with cutoff early-exit, full move scan.
  Kept as the benchmark baseline (``benchmarks/bench_hap.py``).
- ``incremental=False``: full :func:`~repro.mapping.schedule.list_schedule`
  reschedules per trial, full move scan — the slow reference oracle.

All four produce bit-identical :class:`HAPResult`\\ s, including the
``refinement_energies`` trajectory, which is maintained by *delta
bookkeeping*: one energy-table read per accepted move instead of an
O(num_layers) recompute.  The float trajectory is therefore delta-summed
— except its endpoint, which is snapped to the fresh table sum so it
matches ``energy_nj`` bit for bit (see :class:`HAPResult`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.problem import MappingProblem
from repro.mapping.schedule import (MakespanEvaluator, MoveStats, Schedule,
                                    list_schedule)

__all__ = ["HAPResult", "solve_hap"]


@dataclass(frozen=True)
class HAPResult:
    """Solution of one HAP instance.

    Attributes:
        assignment: Flat layer id -> active-slot position.
        schedule: The list schedule realising the assignment.
        makespan: Achieved latency ``rl``, cycles.
        energy_nj: Achieved energy ``re``, nJ — a fresh energy-table sum
            over the final assignment (bit-stable across solver modes).
        feasible: Whether ``makespan <= latency_constraint``.
        latency_constraint: The ``LS`` the solver targeted.
        refinement_energies: Total energy after the feasibility phase and
            after every accepted refinement move, in order.  The first
            entry is a table sum; intermediate entries apply the
            accepted move's energy delta; the final entry is snapped to
            the fresh table sum over the final assignment, so it is
            **bit-identical** to ``energy_nj``.  Monotone non-increasing
            by construction at every delta-summed step; the snapped
            endpoint matches its delta-summed value to float rounding,
            so the final step is monotone up to ulp-scale rounding only
            (both property-tested).
    """

    assignment: tuple[int, ...]
    schedule: Schedule
    makespan: int
    energy_nj: float
    feasible: bool
    latency_constraint: int
    refinement_energies: tuple[float, ...] = ()


class _OraclePricer:
    """Reference move pricer: one full reschedule per trial.

    Implements the same ``rebase``/``trial_move`` interface as
    :class:`~repro.mapping.schedule.MakespanEvaluator` so the solver body
    is shared; every returned value is exact (which trivially satisfies
    the cutoff contract).
    """

    def __init__(self, problem: MappingProblem) -> None:
        self._problem = problem
        self._base: tuple[int, ...] | None = None

    def rebase(self, assignment: tuple[int, ...]) -> int:
        self._base = tuple(assignment)
        return list_schedule(self._problem, self._base,
                             validate=False).makespan

    def trial_move(self, flat_id: int, pos: int,
                   *, cutoff: int | None = None) -> int:
        base = self._base
        trial = base[:flat_id] + (pos,) + base[flat_id + 1:]
        return list_schedule(self._problem, trial, validate=False).makespan


def _improve_makespan(problem: MappingProblem,
                      assignment: list[int],
                      latency_constraint: int,
                      pricer) -> tuple[list[int], int]:
    """Hill-climb single-layer moves until the makespan fits or stalls.

    Reference scan: price every move in ``(flat_id, pos)`` order with a
    shrinking cutoff; the accepted move is the one with the smallest
    exact trial makespan, earliest ``(flat_id, pos)`` on ties.
    """
    makespan = pricer.rebase(tuple(assignment))
    num_layers = problem.num_layers
    num_slots = problem.num_slots
    while makespan > latency_constraint:
        best_move: tuple[int, int] | None = None
        best_makespan = makespan
        for flat_id in range(num_layers):
            current = assignment[flat_id]
            for pos in range(num_slots):
                if pos == current:
                    continue
                trial = pricer.trial_move(flat_id, pos,
                                          cutoff=best_makespan - 1)
                if trial < best_makespan:
                    best_makespan = trial
                    best_move = (flat_id, pos)
        if best_move is None:
            break  # stuck: no single move shrinks the makespan
        flat_id, pos = best_move
        assignment[flat_id] = pos
        makespan = pricer.rebase(tuple(assignment))
    return assignment, makespan


def _improve_makespan_sorted(problem: MappingProblem,
                             assignment: list[int],
                             latency_constraint: int,
                             pricer) -> tuple[list[int], int]:
    """Hill-climb like :func:`_improve_makespan`, but scan each sweep's
    moves in ascending certified-lower-bound order and stop as soon as
    the bound exceeds the incumbent best trial value.

    Choice-identical to the reference scan (property-tested): a move
    whose lower bound exceeds the best exact trial makespan found so far
    can neither beat it nor tie it, and ties between exact values are
    broken by explicit ``(flat_id, pos)`` comparison, so the scan order
    does not leak into the result.
    """
    makespan = pricer.rebase(tuple(assignment))
    num_layers = problem.num_layers
    num_slots = problem.num_slots
    while makespan > latency_constraint:
        candidates: list[tuple[int, int, int]] = []
        for flat_id in range(num_layers):
            current = assignment[flat_id]
            for pos in range(num_slots):
                if pos == current:
                    continue
                candidates.append(
                    (pricer.move_lower_bound(flat_id, pos), flat_id, pos))
        candidates.sort()
        best_move: tuple[int, int] | None = None
        best_val = makespan
        for lower_bound, flat_id, pos in candidates:
            if lower_bound > best_val:
                break  # sorted: no remaining move can beat or tie best_val
            # A tie with the incumbent only matters when this move's
            # (flat_id, pos) would win the tie-break; only then is the
            # cutoff raised to best_val so the exact tie stays
            # representable — otherwise the PR-1 cutoff applies and
            # tying trials early-exit.
            tie_can_win = best_move is not None and (flat_id, pos) < best_move
            cutoff = best_val if tie_can_win else best_val - 1
            trial = pricer.trial_move(flat_id, pos, cutoff=cutoff,
                                      lower_bound=lower_bound)
            if trial < best_val:
                best_val = trial
                best_move = (flat_id, pos)
            elif trial == best_val and tie_can_win:
                best_move = (flat_id, pos)
        if best_move is None:
            break  # stuck: no single move shrinks the makespan
        flat_id, pos = best_move
        assignment[flat_id] = pos
        makespan = pricer.rebase(tuple(assignment))
    return assignment, makespan


#: Cached (flat, pos) full grids keyed by instance shape — the static
#: part of _candidate_moves, shared across sweeps and instances.
_GRID_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _candidate_moves(assignment: list[int], num_layers: int,
                     num_slots: int) -> tuple[np.ndarray, np.ndarray]:
    """All single-layer moves off the current assignment as parallel
    ``(flat_ids, positions)`` arrays, in the reference scan order
    (``flat_id``-major, ``pos`` ascending)."""
    key = (num_layers, num_slots)
    grid = _GRID_CACHE.get(key)
    if grid is None:
        flat = np.repeat(np.arange(num_layers, dtype=np.int64), num_slots)
        pos = np.tile(np.arange(num_slots, dtype=np.int64), num_layers)
        flat.setflags(write=False)
        pos.setflags(write=False)
        _GRID_CACHE[key] = grid = (flat, pos)
    flat, pos = grid
    keep = pos != np.asarray(assignment, dtype=np.int64)[flat]
    return flat[keep], pos[keep]


# Scalar probes priced before a sweep considers handing its remaining
# eligible moves to the array program: the probes establish a tight
# incumbent (the sorted scan's shrinking-cutoff power), the wave then
# prices everything still eligible in one go.
_PROBE = 4

# Minimum eligible-move count worth a wave; below it the scalar sorted
# walk finishes the sweep (array-program setup would dominate).
_WAVE_MIN = 16

# Minimum estimated cost ratio (scalar over hybrid, per the pricer's
# wave cost model) before a feasibility sweep hands its eligible moves
# to the array program.  The margin compensates for the shrinking
# cutoff the scalar walk has and a frozen-cutoff batch does not.
_GAIN_MARGIN = 1.5

# Refinement saving-groups narrower than this are priced through the
# scalar delta-resume path: a lockstep wave of width 1-3 costs more in
# NumPy dispatches than three scalar suffix replays.
_NARROW = 6

# Minimum sweep width (candidate moves per feasibility sweep) before
# ``solve_hap`` selects the batched scans at all; smaller instances run
# the choice-identical scalar delta-resume scans (see solve_hap).
_BATCH_MIN = 64


def _improve_makespan_batched(problem: MappingProblem,
                              assignment: list[int],
                              latency_constraint: int,
                              pricer: MakespanEvaluator
                              ) -> tuple[list[int], int]:
    """Hill-climb like :func:`_improve_makespan_sorted`, with the
    sweep's move bounds computed as one vectorised pass and the bulk of
    the sweep priced as one array program.

    Each sweep: one :meth:`move_lower_bounds` call replaces the scalar
    per-move bound loop, a few scalar probes walk the ascending-bound
    order to establish a tight incumbent (the sorted scan's shrinking
    cutoff), and if many moves are still eligible — their certified
    bound does not exceed the incumbent — the rest of the sweep is
    handed to :meth:`trial_moves` as one batch, which splits it into
    resume-coherent lockstep waves (or routes narrow waves back to
    scalar pricing, per its cost model).

    Choice-identical to the reference scan (property-tested): every move
    whose exact makespan could beat or tie the final winner is priced
    exactly — a skipped move's certified bound exceeded the running best
    value, which only ever shrinks — and the winner is the lexicographic
    minimum of ``(makespan, flat_id, pos)``, the same "smallest trial,
    earliest move on ties" rule.
    """
    makespan = pricer.rebase(tuple(assignment))
    num_layers = problem.num_layers
    num_slots = problem.num_slots
    while makespan > latency_constraint:
        flat_ids, positions = _candidate_moves(assignment, num_layers,
                                               num_slots)
        total = int(flat_ids.shape[0])
        if total == 0:
            break
        bounds = pricer.move_lower_bounds(flat_ids, positions)
        # Candidates are generated flat-major / pos-ascending, so a
        # stable sort on bounds alone yields the lexicographic
        # (bound, flat_id, pos) walk order.
        order = np.argsort(bounds, kind="stable")
        flat_s = flat_ids[order]
        pos_s = positions[order]
        bnd_s = bounds[order]
        best_val = makespan
        best_move: tuple[int, int] | None = None
        index = 0
        priced = 0
        wave_ok = True
        while index < total:
            lower_bound = int(bnd_s[index])
            if lower_bound > best_val:
                break  # ascending: the rest can neither beat nor tie
            if priced >= _PROBE and wave_ok:
                eligible = int(np.searchsorted(
                    bnd_s, best_val, side="right")) - index
                if eligible >= _WAVE_MIN:
                    f_w = flat_s[index:index + eligible]
                    if pricer.batch_gain(f_w) < _GAIN_MARGIN:
                        # Incoherent resume depths: the wave would fall
                        # back to scalar pricing anyway, but with a
                        # frozen cutoff — the shrinking-cutoff walk
                        # below is strictly better. Stay scalar for the
                        # rest of this sweep.
                        wave_ok = False
                        continue
                    p_w = pos_s[index:index + eligible]
                    vals = pricer.trial_moves(f_w, p_w, cutoff=best_val)
                    k = int(np.lexsort((p_w, f_w, vals))[0])
                    val = int(vals[k])
                    cand = (val, int(f_w[k]), int(p_w[k]))
                    # vals <= cutoff are exact, so the lexicographic
                    # compare reproduces the reference acceptance;
                    # certified values exceed best_val and lose.
                    if best_move is None:
                        if val < best_val:
                            best_val, best_move = val, cand[1:]
                    elif cand < (best_val, *best_move):
                        best_val, best_move = val, cand[1:]
                    index += eligible
                    continue  # loop re-checks: next bound > old best_val
            flat_id = int(flat_s[index])
            pos = int(pos_s[index])
            # Same tie handling as the scalar sorted scan (see
            # _improve_makespan_sorted).
            tie_can_win = (best_move is not None
                           and (flat_id, pos) < best_move)
            cutoff = best_val if tie_can_win else best_val - 1
            if lower_bound > cutoff:
                # The incumbent shrank below this move's certified bound
                # since the sweep's vectorised pass: prune inline (same
                # counters trial_move would record).
                stats = pricer.stats
                stats.moves_priced += 1
                stats.pruned += 1
                priced += 1
                index += 1
                continue
            trial = pricer.trial_move(flat_id, pos, cutoff=cutoff,
                                      lower_bound=lower_bound)
            priced += 1
            if trial < best_val:
                best_val = trial
                best_move = (flat_id, pos)
            elif trial == best_val and tie_can_win:
                best_move = (flat_id, pos)
            index += 1
        pricer.stats.pruned += total - index
        if best_move is None:
            break  # stuck: no single move shrinks the makespan
        assignment[best_move[0]] = best_move[1]
        makespan = pricer.rebase(tuple(assignment))
    return assignment, makespan


def _best_refinement_move(assignment: list[int],
                          num_slots: int,
                          latency_constraint: int,
                          pricer,
                          energies: list[list[float]]
                          ) -> tuple[int, int] | None:
    """Reference refinement sweep: price every positive-saving move and
    take the minimum ``(-saving, makespan)`` key (ties to the earliest
    ``(flat_id, pos)``).  The sorted scan in :func:`_refine_energy` is
    property-tested against this."""
    best_move: tuple[int, int] | None = None
    best_key: tuple[float, int] | None = None
    for flat_id in range(len(assignment)):
        current = assignment[flat_id]
        row = energies[flat_id]
        for pos in range(num_slots):
            if pos == current:
                continue
            saving = row[current] - row[pos]
            if saving <= 0:
                continue
            trial = pricer.trial_move(flat_id, pos,
                                      cutoff=latency_constraint)
            if trial > latency_constraint:
                continue
            key = (-saving, trial)
            if best_key is None or key < best_key:
                best_key = key
                best_move = (flat_id, pos)
    return best_move


def _candidate_row(energies: list[list[float]], assignment: list[int],
                   flat_id: int, num_slots: int) -> list[tuple]:
    """Positive-saving moves of one layer as ``(-saving, flat_id, pos)``
    entries, given its current slot."""
    row = energies[flat_id]
    e_current = row[assignment[flat_id]]
    current = assignment[flat_id]
    return [(row[pos] - e_current, flat_id, pos)
            for pos in range(num_slots)
            if pos != current and row[pos] < e_current]


def _best_sorted_move(rows: list[list[tuple]],
                      latency_constraint: int,
                      pricer) -> tuple[int, int] | None:
    """Sorted-scan refinement sweep: price candidates in descending-saving
    order and stop after the first saving group that yields a feasible
    move.  A move with a strictly smaller saving can never beat an
    accepted move under the ``(-saving, makespan)`` key, so skipping it
    is exact — the chosen move is identical to the reference scan's
    (property-tested).
    """
    moves = [move for row in rows for move in row]
    if not moves:
        return None
    moves.sort()
    best_move = None
    best_key = None
    index = 0
    total = len(moves)
    while index < total:
        neg_saving = moves[index][0]
        if best_key is not None and neg_saving > best_key[0]:
            break  # strictly smaller saving: provably cannot win
        group_end = index
        while group_end < total and moves[group_end][0] == neg_saving:
            group_end += 1
        for _, flat_id, pos in moves[index:group_end]:
            trial = pricer.trial_move(flat_id, pos,
                                      cutoff=latency_constraint)
            if trial > latency_constraint:
                continue
            key = (neg_saving, trial)
            if best_key is None or key < best_key:
                best_key = key
                best_move = (flat_id, pos)
        index = group_end
    return best_move


def _best_batched_move(rows: list[list[tuple]],
                       latency_constraint: int,
                       pricer: MakespanEvaluator
                       ) -> tuple[int, int] | None:
    """Batched refinement sweep: one vectorised bound pass over every
    positive-saving move, then the descending-saving group scan of
    :func:`_best_sorted_move` with wide saving groups priced as lockstep
    replay waves (narrow groups — the common case — keep the scalar
    delta-resume path, fed the precomputed bound).

    Group order, the first-feasible-group stop, and the within-group
    ``(makespan, flat_id, pos)`` lexicographic minimum reproduce the
    reference scan's ``(-saving, makespan)`` key with its earliest-
    ``(flat_id, pos)`` tie-break, so the chosen move is identical
    (property-tested).
    """
    moves = [move for row in rows for move in row]
    if not moves:
        return None
    moves.sort()
    total = len(moves)
    best_move = None
    best_key = None
    index = 0
    while index < total:
        neg_saving = moves[index][0]
        if best_key is not None and neg_saving > best_key[0]:
            break  # strictly smaller saving: provably cannot win
        group_end = index
        while group_end < total and moves[group_end][0] == neg_saving:
            group_end += 1
        if group_end - index < _NARROW:
            # Narrow group (the common case): exactly the scalar sorted
            # scan — trial_move computes its own certified bound lazily.
            for j in range(index, group_end):
                _, flat_id, pos = moves[j]
                trial = pricer.trial_move(flat_id, pos,
                                          cutoff=latency_constraint)
                if trial > latency_constraint:
                    continue
                key = (neg_saving, trial)
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (flat_id, pos)
        else:
            f_g = np.array([moves[j][1] for j in range(index, group_end)],
                           dtype=np.int64)
            p_g = np.array([moves[j][2] for j in range(index, group_end)],
                           dtype=np.int64)
            bounds = pricer.move_lower_bounds(f_g, p_g)
            keep = bounds <= latency_constraint
            pricer.stats.pruned += int(keep.size) - int(keep.sum())
            if keep.any():
                f_k = f_g[keep]
                p_k = p_g[keep]
                vals = pricer.trial_moves(f_k, p_k,
                                          cutoff=latency_constraint)
                k = int(np.lexsort((p_k, f_k, vals))[0])
                val = int(vals[k])
                if val <= latency_constraint:
                    key = (neg_saving, val)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_move = (int(f_k[k]), int(p_k[k]))
        index = group_end
    return best_move


def _refine_energy(problem: MappingProblem,
                   assignment: list[int],
                   latency_constraint: int,
                   pricer,
                   energies: list[list[float]],
                   *, scan: str) -> tuple[list[int], int,
                                          list[float]]:
    """Greedy best-saving moves while staying within the constraint.

    Energy bookkeeping is incremental: the running total starts from one
    table sum and is updated by each accepted move's delta (one float
    add per move instead of an O(num_layers) recompute); both solver
    modes share this code, so the trajectory is bit-identical between
    them.
    """
    makespan = pricer.rebase(tuple(assignment))
    energy = problem.assignment_energy(tuple(assignment), validate=False)
    trajectory = [energy]
    num_slots = problem.num_slots
    rows: list[list[tuple]] | None = None
    if scan != "reference":
        rows = [_candidate_row(energies, assignment, flat_id, num_slots)
                for flat_id in range(len(assignment))]
    while True:
        if scan == "batched":
            best_move = _best_batched_move(rows, latency_constraint, pricer)
        elif scan == "sorted":
            best_move = _best_sorted_move(rows, latency_constraint, pricer)
        else:
            best_move = _best_refinement_move(
                assignment, num_slots, latency_constraint, pricer, energies)
        if best_move is None:
            break
        flat_id, pos = best_move
        energy += (energies[flat_id][pos]
                   - energies[flat_id][assignment[flat_id]])
        assignment[flat_id] = pos
        makespan = pricer.rebase(tuple(assignment))
        if rows is not None:
            rows[flat_id] = _candidate_row(energies, assignment, flat_id,
                                           num_slots)
        trajectory.append(energy)
    return assignment, makespan, trajectory


def solve_hap(problem: MappingProblem,
              latency_constraint: int,
              *, incremental: bool = True,
              resume: bool = True,
              batched: bool = True,
              stats: MoveStats | None = None) -> HAPResult:
    """Minimise energy subject to makespan <= ``latency_constraint``.

    Args:
        problem: The HAP instance to solve.
        latency_constraint: Makespan budget ``LS``, cycles.
        incremental: Price single-layer moves through the incremental
            :class:`~repro.mapping.schedule.MakespanEvaluator` (default).
            ``False`` falls back to a full ``list_schedule`` per trial —
            the slow reference oracle used to lock the fast paths down.
        resume: With ``incremental=True``, enable delta-resume move
            pricing and the certified prune bounds (default).  ``False``
            reproduces the PR-1 full-replay fast path (the benchmark
            baseline).  Ignored when ``incremental=False``.
        batched: With ``incremental=True, resume=True``, price each
            solver sweep as one array program (vectorised prune mask +
            one lockstep suffix replay over all surviving moves) —
            the default fast path.  ``False`` keeps the PR-2 scalar
            delta-resume scans (ascending-bound feasibility scan,
            descending-saving refinement scan).  Ignored otherwise.
        stats: Optional :class:`~repro.mapping.schedule.MoveStats` that
            accumulates this solve's move-pricing counters (memo hits,
            prunes, resumes, batched rounds) — threaded into
            :class:`~repro.core.evalservice.EvalServiceStats` by the
            evaluator.

    Raises:
        ValueError: If ``latency_constraint`` is not positive.
    """
    if latency_constraint <= 0:
        raise ValueError(
            f"latency constraint must be positive, got {latency_constraint}")
    if problem.num_slots == 1:
        # Degenerate instance: a single active sub-accelerator admits
        # exactly one assignment, so both phases are no-ops.  Identical
        # to the general path (which would seed with this assignment and
        # find no single-layer moves), priced without building a solver.
        assignment = (0,) * problem.num_layers
        schedule = list_schedule(problem, assignment, validate=False)
        energy = problem.assignment_energy(assignment, validate=False)
        feasible = schedule.makespan <= latency_constraint
        return HAPResult(
            assignment=assignment,
            schedule=schedule,
            makespan=schedule.makespan,
            energy_nj=energy,
            feasible=feasible,
            latency_constraint=latency_constraint,
            refinement_energies=(energy,) if feasible else (),
        )
    if incremental:
        pricer = MakespanEvaluator(problem, resume=resume)
        # Small instances never fill an array-program wave: their sweeps
        # (num_layers x (num_slots - 1) moves) sit below the width at
        # which one lockstep step amortises its NumPy dispatches, so the
        # batched scans would route every move back to scalar pricing
        # and pay pure bookkeeping overhead.  Route them to the scalar
        # delta-resume scans outright — the two scans are
        # choice-identical, so this changes wall-clock only.
        wide = (problem.num_layers * (problem.num_slots - 1)
                >= _BATCH_MIN)
        scan = ("batched" if resume and batched and wide
                else "sorted" if resume else "reference")
    else:
        pricer = _OraclePricer(problem)
        scan = "reference"
    energies = problem.energies.tolist()
    assignment = list(problem.min_latency_assignment())
    if scan == "batched":
        assignment, makespan = _improve_makespan_batched(
            problem, assignment, latency_constraint, pricer)
    elif scan == "sorted":
        assignment, makespan = _improve_makespan_sorted(
            problem, assignment, latency_constraint, pricer)
    else:
        assignment, makespan = _improve_makespan(
            problem, assignment, latency_constraint, pricer)
    trajectory: list[float] = []
    if makespan <= latency_constraint:
        assignment, makespan, trajectory = _refine_energy(
            problem, assignment, latency_constraint, pricer, energies,
            scan=scan)
    if stats is not None and isinstance(pricer, MakespanEvaluator):
        stats.absorb(pricer.stats)
    schedule = list_schedule(problem, tuple(assignment), validate=False)
    energy = problem.assignment_energy(tuple(assignment), validate=False)
    if trajectory:
        # The trajectory is delta-summed; its endpoint describes the
        # same assignment as the fresh table sum above, so snap it to
        # that sum — the endpoint is then bit-identical to ``energy_nj``
        # instead of merely equal to float rounding.
        trajectory[-1] = energy
    return HAPResult(
        assignment=tuple(assignment),
        schedule=schedule,
        makespan=schedule.makespan,
        energy_nj=energy,
        feasible=schedule.makespan <= latency_constraint,
        latency_constraint=latency_constraint,
        refinement_energies=tuple(trajectory),
    )
