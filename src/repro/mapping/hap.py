"""Heuristic HAP solver (the paper's choice, after Shao et al. [29]).

Given a :class:`~repro.mapping.problem.MappingProblem` and a latency
constraint ``LS``, minimise total energy subject to makespan <= ``LS``.
The paper notes ILP gives the optimum but is too slow inside the search
loop, so it "applies a heuristic approach in [29]"; we implement the same
two-phase ratio-greedy scheme:

1. **Feasibility phase** — seed with the per-layer minimum-latency
   assignment, then hill-climb single-layer moves that shrink the
   makespan until it fits ``LS`` (or no move helps).
2. **Energy refinement phase** — repeatedly apply the single-layer move
   with the best energy saving whose resulting makespan still fits
   ``LS`` (ties broken by smaller makespan growth), until no improving
   move remains.

The result reports the achieved makespan and energy even when infeasible,
so the evaluator can compute the paper's graded penalty (Eq. 3) instead of
rejecting outright.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.problem import MappingProblem
from repro.mapping.schedule import Schedule, list_schedule

__all__ = ["HAPResult", "solve_hap"]


@dataclass(frozen=True)
class HAPResult:
    """Solution of one HAP instance.

    Attributes:
        assignment: Flat layer id -> active-slot position.
        schedule: The list schedule realising the assignment.
        makespan: Achieved latency ``rl``, cycles.
        energy_nj: Achieved energy ``re``, nJ.
        feasible: Whether ``makespan <= latency_constraint``.
        latency_constraint: The ``LS`` the solver targeted.
    """

    assignment: tuple[int, ...]
    schedule: Schedule
    makespan: int
    energy_nj: float
    feasible: bool
    latency_constraint: int


def _evaluate(problem: MappingProblem,
              assignment: tuple[int, ...]) -> tuple[Schedule, float]:
    schedule = list_schedule(problem, assignment)
    return schedule, problem.assignment_energy(assignment)


def _improve_makespan(problem: MappingProblem,
                      assignment: list[int],
                      latency_constraint: int) -> tuple[list[int], Schedule]:
    """Hill-climb single-layer moves until the makespan fits or stalls."""
    schedule = list_schedule(problem, tuple(assignment))
    while schedule.makespan > latency_constraint:
        best_move: tuple[int, int] | None = None
        best_makespan = schedule.makespan
        for flat_id in range(problem.num_layers):
            current = assignment[flat_id]
            for pos in range(problem.num_slots):
                if pos == current:
                    continue
                assignment[flat_id] = pos
                trial = list_schedule(problem, tuple(assignment))
                if trial.makespan < best_makespan:
                    best_makespan = trial.makespan
                    best_move = (flat_id, pos)
                assignment[flat_id] = current
        if best_move is None:
            break  # stuck: no single move shrinks the makespan
        flat_id, pos = best_move
        assignment[flat_id] = pos
        schedule = list_schedule(problem, tuple(assignment))
    return assignment, schedule


def _refine_energy(problem: MappingProblem,
                   assignment: list[int],
                   latency_constraint: int) -> tuple[list[int], Schedule]:
    """Greedy best-saving moves while staying within the constraint."""
    schedule = list_schedule(problem, tuple(assignment))
    improved = True
    while improved:
        improved = False
        best_move: tuple[int, int] | None = None
        best_key: tuple[float, int] | None = None
        for flat_id in range(problem.num_layers):
            current = assignment[flat_id]
            for pos in range(problem.num_slots):
                if pos == current:
                    continue
                saving = float(problem.energies[flat_id, current]
                               - problem.energies[flat_id, pos])
                if saving <= 0:
                    continue
                assignment[flat_id] = pos
                trial = list_schedule(problem, tuple(assignment))
                assignment[flat_id] = current
                if trial.makespan > latency_constraint:
                    continue
                key = (-saving, trial.makespan)
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (flat_id, pos)
        if best_move is not None:
            flat_id, pos = best_move
            assignment[flat_id] = pos
            schedule = list_schedule(problem, tuple(assignment))
            improved = True
    return assignment, schedule


def solve_hap(problem: MappingProblem,
              latency_constraint: int) -> HAPResult:
    """Minimise energy subject to makespan <= ``latency_constraint``.

    Raises:
        ValueError: If ``latency_constraint`` is not positive.
    """
    if latency_constraint <= 0:
        raise ValueError(
            f"latency constraint must be positive, got {latency_constraint}")
    assignment = list(problem.min_latency_assignment())
    assignment, schedule = _improve_makespan(problem, assignment,
                                             latency_constraint)
    if schedule.makespan <= latency_constraint:
        assignment, schedule = _refine_energy(problem, assignment,
                                              latency_constraint)
    energy = problem.assignment_energy(tuple(assignment))
    return HAPResult(
        assignment=tuple(assignment),
        schedule=schedule,
        makespan=schedule.makespan,
        energy_nj=energy,
        feasible=schedule.makespan <= latency_constraint,
        latency_constraint=latency_constraint,
    )
