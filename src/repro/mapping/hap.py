"""Heuristic HAP solver (the paper's choice, after Shao et al. [29]).

Given a :class:`~repro.mapping.problem.MappingProblem` and a latency
constraint ``LS``, minimise total energy subject to makespan <= ``LS``.
The paper notes ILP gives the optimum but is too slow inside the search
loop, so it "applies a heuristic approach in [29]"; we implement the same
two-phase ratio-greedy scheme:

1. **Feasibility phase** — seed with the per-layer minimum-latency
   assignment, then hill-climb single-layer moves that shrink the
   makespan until it fits ``LS`` (or no move helps).
2. **Energy refinement phase** — repeatedly apply the single-layer move
   with the best energy saving whose resulting makespan still fits
   ``LS`` (ties broken by smaller makespan growth), until no improving
   move remains.

The result reports the achieved makespan and energy even when infeasible,
so the evaluator can compute the paper's graded penalty (Eq. 3) instead of
rejecting outright.

Hot-path note: both phases evaluate ``num_layers * (num_slots - 1)``
single-layer moves per iteration, and this solver runs for every sampled
design of the search loop.  By default the moves are priced through
:class:`~repro.mapping.schedule.MakespanEvaluator` — an incremental,
allocation-free, memoised replay of the list scheduler with certified
early exit — instead of full ``list_schedule`` reschedules.  Passing
``incremental=False`` restores the full-reschedule path, kept as the
reference oracle: both paths choose identical moves and produce
bit-identical :class:`HAPResult`\\ s (``tests/test_hap_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mapping.problem import MappingProblem
from repro.mapping.schedule import MakespanEvaluator, Schedule, list_schedule

__all__ = ["HAPResult", "solve_hap"]

#: Signature of a makespan pricer: (assignment, cutoff) -> makespan, where
#: the result is exact whenever it is <= cutoff (or cutoff is None).
_MakespanFn = Callable[..., int]


@dataclass(frozen=True)
class HAPResult:
    """Solution of one HAP instance.

    Attributes:
        assignment: Flat layer id -> active-slot position.
        schedule: The list schedule realising the assignment.
        makespan: Achieved latency ``rl``, cycles.
        energy_nj: Achieved energy ``re``, nJ.
        feasible: Whether ``makespan <= latency_constraint``.
        latency_constraint: The ``LS`` the solver targeted.
        refinement_energies: Total energy after the feasibility phase and
            after every accepted refinement move, in order — monotone
            non-increasing by construction (property-tested).
    """

    assignment: tuple[int, ...]
    schedule: Schedule
    makespan: int
    energy_nj: float
    feasible: bool
    latency_constraint: int
    refinement_energies: tuple[float, ...] = ()


def _improve_makespan(problem: MappingProblem,
                      assignment: list[int],
                      latency_constraint: int,
                      makespan_of: _MakespanFn) -> tuple[list[int], int]:
    """Hill-climb single-layer moves until the makespan fits or stalls."""
    makespan = makespan_of(tuple(assignment))
    while makespan > latency_constraint:
        best_move: tuple[int, int] | None = None
        best_makespan = makespan
        for flat_id in range(problem.num_layers):
            current = assignment[flat_id]
            for pos in range(problem.num_slots):
                if pos == current:
                    continue
                assignment[flat_id] = pos
                trial = makespan_of(tuple(assignment),
                                    cutoff=best_makespan - 1)
                assignment[flat_id] = current
                if trial < best_makespan:
                    best_makespan = trial
                    best_move = (flat_id, pos)
        if best_move is None:
            break  # stuck: no single move shrinks the makespan
        flat_id, pos = best_move
        assignment[flat_id] = pos
        makespan = best_makespan
    return assignment, makespan


def _refine_energy(problem: MappingProblem,
                   assignment: list[int],
                   latency_constraint: int,
                   makespan_of: _MakespanFn,
                   energies: list[list[float]]) -> tuple[list[int], int,
                                                         list[float]]:
    """Greedy best-saving moves while staying within the constraint."""
    makespan = makespan_of(tuple(assignment))
    trajectory = [problem.assignment_energy(tuple(assignment))]
    improved = True
    while improved:
        improved = False
        best_move: tuple[int, int] | None = None
        best_key: tuple[float, int] | None = None
        for flat_id in range(problem.num_layers):
            current = assignment[flat_id]
            row = energies[flat_id]
            for pos in range(problem.num_slots):
                if pos == current:
                    continue
                saving = row[current] - row[pos]
                if saving <= 0:
                    continue
                assignment[flat_id] = pos
                trial = makespan_of(tuple(assignment),
                                    cutoff=latency_constraint)
                assignment[flat_id] = current
                if trial > latency_constraint:
                    continue
                key = (-saving, trial)
                if best_key is None or key < best_key:
                    best_key = key
                    best_move = (flat_id, pos)
        if best_move is not None:
            flat_id, pos = best_move
            assignment[flat_id] = pos
            makespan = makespan_of(tuple(assignment))
            trajectory.append(problem.assignment_energy(tuple(assignment)))
            improved = True
    return assignment, makespan, trajectory


def solve_hap(problem: MappingProblem,
              latency_constraint: int,
              *, incremental: bool = True) -> HAPResult:
    """Minimise energy subject to makespan <= ``latency_constraint``.

    Args:
        problem: The HAP instance to solve.
        latency_constraint: Makespan budget ``LS``, cycles.
        incremental: Price single-layer moves through the incremental
            :class:`~repro.mapping.schedule.MakespanEvaluator` (default).
            ``False`` falls back to a full ``list_schedule`` per trial —
            the slow reference oracle used to lock the fast path down.

    Raises:
        ValueError: If ``latency_constraint`` is not positive.
    """
    if latency_constraint <= 0:
        raise ValueError(
            f"latency constraint must be positive, got {latency_constraint}")
    if incremental:
        makespan_of: _MakespanFn = MakespanEvaluator(problem).makespan
    else:
        def makespan_of(a: tuple[int, ...], *, cutoff: int | None = None,
                        _p: MappingProblem = problem) -> int:
            return list_schedule(_p, a).makespan
    energies = [[float(problem.energies[fid, pos])
                 for pos in range(problem.num_slots)]
                for fid in range(problem.num_layers)]
    assignment = list(problem.min_latency_assignment())
    assignment, makespan = _improve_makespan(problem, assignment,
                                             latency_constraint, makespan_of)
    trajectory: list[float] = []
    if makespan <= latency_constraint:
        assignment, makespan, trajectory = _refine_energy(
            problem, assignment, latency_constraint, makespan_of, energies)
    schedule = list_schedule(problem, tuple(assignment))
    energy = problem.assignment_energy(tuple(assignment))
    return HAPResult(
        assignment=tuple(assignment),
        schedule=schedule,
        makespan=schedule.makespan,
        energy_nj=energy,
        feasible=schedule.makespan <= latency_constraint,
        latency_constraint=latency_constraint,
        refinement_energies=tuple(trajectory),
    )
