"""Heterogeneous assignment problem (HAP) instances.

§IV-③ reduces NASAIC's mapping/scheduling step to the classical
heterogeneous assignment problem [28], [29]: given per-layer latency and
energy on every sub-accelerator, chain dependencies within each DNN, and
a latency constraint ``LS``, choose an assignment (and schedule) that
minimises energy subject to makespan <= ``LS``.

:class:`MappingProblem` materialises the cost tables by querying the
MAESTRO-substitute oracle for every (layer, active sub-accelerator) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accel.accelerator import HeterogeneousAccelerator
from repro.arch.layers import ConvLayer
from repro.arch.network import NetworkArch
from repro.cost.model import CostModel

__all__ = ["MappingProblem"]


@dataclass(frozen=True)
class MappingProblem:
    """Flattened HAP instance over all layers of all networks.

    Attributes:
        networks: The DNNs of the workload, in task order.
        accelerator: The candidate hardware design.
        active_slots: Indices into ``accelerator.subaccs`` that have PEs;
            assignments refer to *positions in this tuple*.
        durations: ``[num_layers, num_active_slots]`` latency table, cycles.
        energies: ``[num_layers, num_active_slots]`` energy table, nJ.
        chains: Per-network tuples of flat layer ids in execution order.
        layer_net: Flat layer id -> owning network index.
        flat_layers: Flat layer id -> the layer record.
    """

    networks: tuple[NetworkArch, ...]
    accelerator: HeterogeneousAccelerator
    active_slots: tuple[int, ...]
    durations: np.ndarray
    energies: np.ndarray
    chains: tuple[tuple[int, ...], ...]
    layer_net: tuple[int, ...]
    flat_layers: tuple[ConvLayer, ...]

    @classmethod
    def build(
        cls,
        networks: tuple[NetworkArch, ...] | list[NetworkArch],
        accelerator: HeterogeneousAccelerator,
        cost_model: CostModel,
        *,
        batched: bool = True,
    ) -> "MappingProblem":
        """Query the cost oracle and assemble the HAP tables.

        Args:
            batched: Price the whole ``layers x active-slot`` grid through
                :meth:`repro.cost.model.CostModel.cost_table` — one
                vectorised pass over the memo misses — instead of one
                scalar oracle call per cell.  Both paths produce
                bit-identical tables (``tests/test_cost_model.py``);
                ``False`` keeps the scalar reference around for
                benchmarking the batch win.
        """
        networks = tuple(networks)
        if not networks:
            raise ValueError("a mapping problem needs at least one network")
        active = tuple(i for i, s in enumerate(accelerator.subaccs)
                       if s.is_active)
        flat_layers: list[ConvLayer] = []
        layer_net: list[int] = []
        chains: list[tuple[int, ...]] = []
        for net_idx, network in enumerate(networks):
            chain = []
            for layer in network.layers:
                chain.append(len(flat_layers))
                flat_layers.append(layer)
                layer_net.append(net_idx)
            chains.append(tuple(chain))
        num_layers = len(flat_layers)
        if batched:
            grid = cost_model.cost_table(
                flat_layers, [accelerator.subaccs[slot] for slot in active])
            durations = np.array(
                [[cost.latency_cycles for cost in row] for row in grid],
                dtype=np.int64).reshape(num_layers, len(active))
            energies = np.array(
                [[cost.energy_nj for cost in row] for row in grid],
                dtype=np.float64).reshape(num_layers, len(active))
        else:
            durations = np.zeros((num_layers, len(active)), dtype=np.int64)
            energies = np.zeros((num_layers, len(active)), dtype=np.float64)
            for flat_id, layer in enumerate(flat_layers):
                for pos, slot in enumerate(active):
                    cost = cost_model.layer_cost(layer,
                                                 accelerator.subaccs[slot])
                    durations[flat_id, pos] = cost.latency_cycles
                    energies[flat_id, pos] = cost.energy_nj
        return cls(
            networks=networks,
            accelerator=accelerator,
            active_slots=active,
            durations=durations,
            energies=energies,
            chains=tuple(chains),
            layer_net=tuple(layer_net),
            flat_layers=tuple(flat_layers),
        )

    @classmethod
    def build_many(
        cls,
        designs: Sequence[tuple],
        cost_model: CostModel,
        *,
        batched: bool = True,
    ) -> list["MappingProblem"]:
        """Build one problem per ``(networks, accelerator)`` design,
        priming the cost memo with the **union** of the batch's distinct
        (layer geometry, sub-accelerator) pairs first.

        One vectorised pricing pass per distinct sub-accelerator
        configuration covers the whole generation
        (:meth:`repro.cost.model.CostModel.prime_pairs`); every
        per-design :meth:`build` is then answered from the memo.  The
        returned problems are bit-identical to building each design
        separately — priming changes *when* a pair is priced, never its
        value.  ``batched=False`` skips priming and builds each design
        through the scalar reference path.
        """
        designs = list(designs)
        if batched and len(designs) > 1:
            pairs: list[tuple[ConvLayer, object]] = []
            for networks, accelerator in designs:
                active = [sub for sub in accelerator.subaccs
                          if sub.is_active]
                for network in networks:
                    for layer in network.layers:
                        for subacc in active:
                            pairs.append((layer, subacc))
            cost_model.prime_pairs(pairs)
        return [cls.build(networks, accelerator, cost_model,
                          batched=batched)
                for networks, accelerator in designs]

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.flat_layers)

    @property
    def num_slots(self) -> int:
        """Number of *active* sub-accelerators."""
        return len(self.active_slots)

    @property
    def _row_index(self) -> np.ndarray:
        """Cached ``arange(num_layers)`` for fancy-indexed table reads."""
        # Frozen dataclass: stash via __dict__ (bypasses the frozen guard)
        # so repeated energy reads stop allocating a fresh arange.
        cached = self.__dict__.get("_row_index_cache")
        if cached is None:
            cached = np.arange(self.num_layers)
            self.__dict__["_row_index_cache"] = cached
        return cached

    def assignment_energy(self, assignment: tuple[int, ...],
                          *, validate: bool = True) -> float:
        """Total energy of an assignment (makespan-independent).

        ``validate=False`` skips the entry check for callers that produced
        the assignment themselves (the HAP solver); public callers keep
        the default.
        """
        if validate:
            self.validate_assignment(assignment)
        return float(self.energies[self._row_index, list(assignment)].sum())

    def validate_assignment(self, assignment: tuple[int, ...]) -> None:
        """Raise ``ValueError`` unless every layer maps to an active slot."""
        if len(assignment) != self.num_layers:
            raise ValueError(
                f"assignment covers {len(assignment)} layers, expected "
                f"{self.num_layers}")
        if not self.num_layers:
            return
        positions = np.asarray(assignment, dtype=np.int64)
        bad = (positions < 0) | (positions >= self.num_slots)
        if bad.any():
            flat_id = int(np.argmax(bad))
            raise ValueError(
                f"layer {flat_id} assigned to slot position "
                f"{assignment[flat_id]}, valid range [0, {self.num_slots})")

    def mapped_layers_by_slot(
        self, assignment: tuple[int, ...]
    ) -> dict[int, list[ConvLayer]]:
        """Group layers by *accelerator slot index* (for buffer sizing)."""
        self.validate_assignment(assignment)
        grouped: dict[int, list[ConvLayer]] = {
            slot: [] for slot in self.active_slots}
        for flat_id, pos in enumerate(assignment):
            grouped[self.active_slots[pos]].append(self.flat_layers[flat_id])
        return grouped

    def min_latency_assignment(self) -> tuple[int, ...]:
        """Per-layer latency-greedy assignment (HAP heuristic seed)."""
        return tuple(int(i) for i in np.argmin(self.durations, axis=1))

    def min_energy_assignment(self) -> tuple[int, ...]:
        """Per-layer energy-greedy assignment (unconstrained optimum)."""
        return tuple(int(i) for i in np.argmin(self.energies, axis=1))
