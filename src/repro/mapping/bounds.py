"""ILP-based energy lower bound for HAP instances.

The paper notes the HAP can be solved optimally with Integer Linear
Programming but runs a heuristic for speed.  Scheduling (one layer at a
time per sub-accelerator, chain precedence) is what makes the exact
problem hard; dropping it yields a *relaxation* whose optimum is a valid
**lower bound** on any schedulable solution's energy:

    minimise   sum_ij energy[i][j] * x[i][j]
    subject to sum_j x[i][j] = 1                     (each layer placed)
               sum_i dur[i][j] * x[i][j] <= LS       (per-slot load)
               sum_{i in chain} dur[i][a_i] <= LS    (chain critical path)
               x binary

Both constraint families are *necessary* for feasibility under any
scheduler (a slot cannot run longer than the makespan; a chain is
serial), so every feasible schedule satisfies the relaxation and the
relaxation's optimum can only be lower.  Solved with
``scipy.optimize.milp``.  Tests certify ``bound <= exact <= heuristic``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.mapping.problem import MappingProblem

__all__ = ["IlpBound", "energy_lower_bound"]


@dataclass(frozen=True)
class IlpBound:
    """Result of the ILP relaxation.

    Attributes:
        energy_nj: The lower bound (``None`` if the relaxation itself is
            infeasible — then the true instance is certainly infeasible).
        feasible: Whether the relaxation admits any assignment.
        assignment: The relaxation's optimal placement (may not be
            schedulable; useful as a warm start / diagnostic).
    """

    energy_nj: float | None
    feasible: bool
    assignment: tuple[int, ...] | None


def energy_lower_bound(problem: MappingProblem,
                       latency_constraint: int) -> IlpBound:
    """Solve the scheduling-free ILP relaxation of a HAP instance."""
    if latency_constraint <= 0:
        raise ValueError(
            f"latency constraint must be positive, got {latency_constraint}")
    layers = problem.num_layers
    slots = problem.num_slots
    n_vars = layers * slots

    def var(i: int, j: int) -> int:
        return i * slots + j

    cost = problem.energies.reshape(-1).astype(float)
    constraints = []
    # Each layer assigned exactly once.
    assign = np.zeros((layers, n_vars))
    for i in range(layers):
        for j in range(slots):
            assign[i, var(i, j)] = 1.0
    constraints.append(LinearConstraint(assign, lb=1.0, ub=1.0))
    # Per-slot load within the latency budget.
    load = np.zeros((slots, n_vars))
    for j in range(slots):
        for i in range(layers):
            load[j, var(i, j)] = float(problem.durations[i, j])
    constraints.append(
        LinearConstraint(load, lb=0.0, ub=float(latency_constraint)))
    # Each chain's serial execution time within the budget.
    chain_rows = np.zeros((len(problem.chains), n_vars))
    for c, chain in enumerate(problem.chains):
        for i in chain:
            for j in range(slots):
                chain_rows[c, var(i, j)] = float(problem.durations[i, j])
    constraints.append(
        LinearConstraint(chain_rows, lb=0.0, ub=float(latency_constraint)))

    res = milp(
        c=cost,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0.0, 1.0),
    )
    if not res.success or res.x is None:
        return IlpBound(energy_nj=None, feasible=False, assignment=None)
    x = np.round(res.x).reshape(layers, slots)
    assignment = tuple(int(np.argmax(x[i])) for i in range(layers))
    return IlpBound(
        energy_nj=float(res.fun),
        feasible=True,
        assignment=assignment,
    )
