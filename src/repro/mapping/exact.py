"""Exact HAP reference solver (branch-and-bound).

The paper mentions the optimal HAP instantiation via Integer Linear
Programming but runs the heuristic for speed.  This module provides the
optimal reference for *small* instances so tests can certify the
heuristic's solution quality (DESIGN.md ablation A).

The search branches on the assignment of each flat layer in order and
prunes on an admissible energy bound (sum of per-layer minimum remaining
energies); feasibility is certified with the same deterministic list
scheduler the heuristic uses, so both solvers optimise over the identical
schedule policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.problem import MappingProblem
from repro.mapping.schedule import list_schedule

__all__ = ["ExactResult", "solve_exact"]

#: Refuse instances whose full tree would be unreasonably large.
_MAX_LEAVES = 2_000_000


@dataclass(frozen=True)
class ExactResult:
    """Optimal assignment for a small HAP instance (or proof of
    infeasibility under the scheduler policy)."""

    assignment: tuple[int, ...] | None
    makespan: int | None
    energy_nj: float | None
    feasible: bool
    explored: int


def solve_exact(problem: MappingProblem,
                latency_constraint: int) -> ExactResult:
    """Exhaustively find the minimum-energy feasible assignment.

    Raises:
        ValueError: If the instance is too large
            (``num_slots ** num_layers > 2e6`` leaves) or the constraint
            is not positive.
    """
    if latency_constraint <= 0:
        raise ValueError(
            f"latency constraint must be positive, got {latency_constraint}")
    leaves = problem.num_slots ** problem.num_layers
    if leaves > _MAX_LEAVES:
        raise ValueError(
            f"instance too large for exact solve: {problem.num_layers} "
            f"layers x {problem.num_slots} slots = {leaves} leaves")

    min_remaining = np.minimum.reduce(
        [problem.energies[:, pos] for pos in range(problem.num_slots)])
    suffix_bound = np.concatenate(
        [np.cumsum(min_remaining[::-1])[::-1], [0.0]])

    best_energy = np.inf
    best_assignment: tuple[int, ...] | None = None
    best_makespan: int | None = None
    explored = 0
    assignment: list[int] = [0] * problem.num_layers

    def rec(depth: int, energy_so_far: float) -> None:
        nonlocal best_energy, best_assignment, best_makespan, explored
        if energy_so_far + suffix_bound[depth] >= best_energy:
            return
        if depth == problem.num_layers:
            explored += 1
            schedule = list_schedule(problem, tuple(assignment))
            if schedule.makespan <= latency_constraint:
                best_energy = energy_so_far
                best_assignment = tuple(assignment)
                best_makespan = schedule.makespan
            return
        order = np.argsort(problem.energies[depth])
        for pos in order:
            assignment[depth] = int(pos)
            rec(depth + 1,
                energy_so_far + float(problem.energies[depth, pos]))
        assignment[depth] = 0

    rec(0, 0.0)
    return ExactResult(
        assignment=best_assignment,
        makespan=best_makespan,
        energy_nj=None if best_assignment is None else float(best_energy),
        feasible=best_assignment is not None,
        explored=explored,
    )
