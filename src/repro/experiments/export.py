"""CSV exporters for the figure harnesses.

The paper's figures are 3-D scatter plots; these helpers dump every
point series as CSV so any plotting tool can regenerate the visuals from
the benchmark outputs (``benchmarks/results/*.csv`` when run through the
benches, or programmatically).
"""

from __future__ import annotations

from repro.experiments.fig1 import Fig1Result
from repro.experiments.fig6 import Fig6Result

__all__ = ["fig1_to_csv", "fig6_to_csv"]

_HEADER = "series,latency_cycles,energy_nj,area_um2,feasible,accuracy"


def _row(series: str, latency: float, energy: float, area: float,
         feasible: bool, accuracy: str) -> str:
    return (f"{series},{latency:.6g},{energy:.6g},{area:.6g},"
            f"{int(feasible)},{accuracy}")


def fig6_to_csv(result: Fig6Result) -> str:
    """One Fig. 6 panel as CSV (explored / lower-bound / best series)."""
    lines = [_HEADER]
    for solution in result.explored:
        lines.append(_row(
            "explored", solution.latency_cycles, solution.energy_nj,
            solution.area_um2, solution.feasible,
            "/".join(f"{a:.4g}" for a in solution.accuracies)))
    lb_acc = "/".join(f"{a:.4g}" for a in result.lower_bound_accuracies)
    for evaluation in result.lower_bounds:
        lines.append(_row(
            "lower_bound", evaluation.latency_cycles,
            evaluation.energy_nj, evaluation.area_um2,
            evaluation.feasible, lb_acc))
    if result.best is not None:
        lines.append(_row(
            "best", result.best.latency_cycles, result.best.energy_nj,
            result.best.area_um2, result.best.feasible,
            "/".join(f"{a:.4g}" for a in result.best.accuracies)))
    specs = result.workload.specs
    lines.append(_row("specs", specs.latency_cycles, specs.energy_nj,
                      specs.area_um2, True, ""))
    return "\n".join(lines)


def fig1_to_csv(result: Fig1Result) -> str:
    """The Fig. 1 point families as CSV."""
    lines = [_HEADER]
    for evaluation in result.nas_asic_points:
        lines.append(_row(
            "nas_asic", evaluation.latency_cycles, evaluation.energy_nj,
            evaluation.area_um2, evaluation.feasible,
            f"{result.nas_accuracy:.4g}"))
    for series, point in (
            ("hw_aware_nas", result.hw_aware_nas_point),
            ("heuristic", result.heuristic_point),
            ("mc_optimal", result.mc_optimal_point)):
        if point is None:
            continue
        lines.append(_row(
            series, point.latency_cycles, point.energy_nj,
            point.area_um2, point.feasible,
            f"{point.accuracies[0]:.4g}"))
    specs = result.workload.specs
    lines.append(_row("specs", specs.latency_cycles, specs.energy_nj,
                      specs.area_um2, True, ""))
    return "\n".join(lines)
