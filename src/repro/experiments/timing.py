"""Search-cost accounting (§V-A: "around 3.5 GPU Hours" per workload).

The paper attributes NASAIC's modest search cost to the optimizer
selector: hardware exploration is orders of magnitude cheaper than
training, runs of the controller whose designs are all infeasible skip
training entirely, and the one training per episode overlaps the next
episode's hardware exploration (the non-blocking scheme of §IV-②).

This harness reconstructs that accounting for a NASAIC run:

- trainings actually executed x the per-training GPU cost (the paper's
  P100 figure is modelled as 25 GPU-seconds amortised per training);
- trainings avoided by early pruning and by the train-once memoisation;
- the hardware-exploration time actually measured here (CPU);
- the resulting end-to-end wall-clock estimate under the paper's
  non-blocking overlap: ``max(GPU time, hardware time)`` plus the
  non-overlapped tail.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.search import NASAIC, NASAICConfig
from repro.utils.tables import format_table
from repro.workloads.workload import Workload

__all__ = ["SearchCostReport", "format_timing", "run_timing"]


@dataclass
class SearchCostReport:
    """Cost accounting of one NASAIC run."""

    workload: Workload
    episodes: int
    trainings_run: int
    trainings_skipped: int
    trainings_memoised: int
    hardware_evaluations: int
    hardware_seconds: float
    simulated_gpu_seconds: float
    best_weighted: float | None

    @property
    def simulated_gpu_hours(self) -> float:
        return self.simulated_gpu_seconds / 3600.0

    @property
    def overlapped_wall_seconds(self) -> float:
        """Wall clock under the paper's non-blocking training scheme."""
        return max(self.simulated_gpu_seconds, self.hardware_seconds)

    @property
    def naive_wall_seconds(self) -> float:
        """Wall clock if every episode trained every task (no pruning,
        no memoisation) and nothing overlapped."""
        per_training = (self.simulated_gpu_seconds
                        / max(1, self.trainings_run))
        total_episodes_cost = (per_training * self.episodes
                               * self.workload.num_tasks)
        return total_episodes_cost + self.hardware_seconds


def run_timing(workload: Workload, *, episodes: int = 500,
               hw_steps: int = 10, seed: int = 77) -> SearchCostReport:
    """Run NASAIC and assemble its cost report."""
    search = NASAIC(workload, config=NASAICConfig(
        episodes=episodes, hw_steps=hw_steps, seed=seed))
    start = time.perf_counter()
    result = search.run()
    hardware_seconds = time.perf_counter() - start
    trained_episodes = sum(1 for e in result.episodes if e.trained)
    memoised = (trained_episodes * workload.num_tasks
                - search.trainer.trainings_run)
    return SearchCostReport(
        workload=workload,
        episodes=episodes,
        trainings_run=search.trainer.trainings_run,
        trainings_skipped=search.trainer.trainings_skipped,
        trainings_memoised=max(0, memoised),
        hardware_evaluations=result.hardware_evaluations,
        hardware_seconds=hardware_seconds,
        simulated_gpu_seconds=search.trainer.simulated_gpu_seconds,
        best_weighted=(result.best.weighted_accuracy
                       if result.best else None),
    )


def format_timing(report: SearchCostReport) -> str:
    """Render the cost report (paper reference: ~3.5 GPU hours)."""
    rows = [
        ["episodes (beta)", report.episodes],
        ["hardware evaluations", report.hardware_evaluations],
        ["hardware exploration time", f"{report.hardware_seconds:.1f} s"],
        ["trainings executed", report.trainings_run],
        ["trainings skipped (early pruning)", report.trainings_skipped],
        ["trainings saved by memoisation", report.trainings_memoised],
        ["simulated GPU time",
         f"{report.simulated_gpu_hours:.2f} GPU-hours"],
        ["wall clock (non-blocking overlap)",
         f"{report.overlapped_wall_seconds / 3600.0:.2f} h"],
        ["wall clock without pruning/overlap",
         f"{report.naive_wall_seconds / 3600.0:.2f} h"],
        ["best weighted accuracy",
         f"{report.best_weighted:.4f}" if report.best_weighted else "-"],
    ]
    return format_table(
        ["quantity", "value"], rows,
        title=f"Search cost [{report.workload.name}] "
              "(paper: ~3.5 GPU-hours/workload on a P100)")
