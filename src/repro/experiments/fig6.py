"""Fig. 6 — NASAIC design-space exploration on W1/W2/W3.

For each workload the figure shows, in (latency, energy, area) space:

- the **design specs** (black diamond, upper bound),
- every solution **explored by NASAIC** (green diamonds) — all of them
  meet the specs by construction of the reward,
- **lower bounds** (blue crosses): the smallest architecture in each
  search space combined with swept ASIC designs, annotated with the
  smallest networks' accuracies (78.93% CIFAR-10, 71.57% STL-10,
  0.6462 IOU), and
- the **best solution** (red star) with its accuracies.

Shape checks reproduced here: every NASAIC-explored solution is
feasible; the best solution's accuracy is far above the lower bounds;
and the best solution sits close to at least one spec boundary for W1
(energy) — the paper's "accuracy is bounded by resources" observation.

The NASAIC run executes as a one-scenario
:class:`~repro.core.campaign.Campaign` and the panel consumes its
consolidated outcome; the campaign's cost model is shared with the
lower-bound sweep, so the cross-design cost-table memo spans the whole
panel (exactly the sharing the old hand-rolled wiring provided, now
through the one orchestration path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.allocation import AllocationSpace
from repro.core.baselines import monte_carlo_designs
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Scenario,
)
from repro.core.evaluator import HardwareEvaluation
from repro.core.results import ExploredSolution
from repro.core.search import NASAICConfig
from repro.cost.model import CostModel
from repro.train.surrogate import default_surrogate
from repro.utils.tables import format_table
from repro.workloads.workload import Workload

__all__ = ["Fig6Result", "format_fig6", "run_fig6"]


@dataclass
class Fig6Result:
    """One panel of Fig. 6."""

    workload: Workload
    explored: list[ExploredSolution]
    lower_bounds: list[HardwareEvaluation]
    lower_bound_accuracies: tuple[float, ...]
    best: ExploredSolution | None
    trainings_run: int
    trainings_skipped: int
    #: Consolidated campaign record of the NASAIC run (cache/pricing
    #: accounting, campaign JSON via ``campaign_to_dict``).
    campaign: CampaignResult | None = None

    @property
    def all_explored_feasible(self) -> bool:
        return all(s.feasible for s in self.explored)

    def spec_utilisation(self) -> tuple[float, float, float]:
        """Best solution's (latency, energy, area) as fractions of the
        specs — the paper quotes e.g. 97.12% energy utilisation for W1."""
        if self.best is None:
            raise ValueError("no feasible solution to report")
        specs = self.workload.specs
        return (self.best.latency_cycles / specs.latency_cycles,
                self.best.energy_nj / specs.energy_nj,
                self.best.area_um2 / specs.area_um2)


def run_fig6(
    workload: Workload,
    *,
    episodes: int = 500,
    hw_steps: int = 10,
    lower_bound_designs: int = 200,
    seed: int = 43,
    config: NASAICConfig | None = None,
    store_path=None,
) -> Fig6Result:
    """Regenerate one Fig. 6 panel for ``workload``.

    ``store_path`` plugs a persistent evaluation store under the NASAIC
    campaign so repeated regenerations warm-start from prior pricing.
    """
    allocation = AllocationSpace()
    cost_model = CostModel()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    if config is None:
        config = NASAICConfig(episodes=episodes, hw_steps=hw_steps,
                              seed=seed)
    scenario = Scenario(
        workload=workload, strategy="nasaic", budget=config.episodes,
        seed=config.seed, rho=config.rho,
        options={"config": config, "allocation": allocation,
                 "surrogate": surrogate})
    with Campaign(CampaignConfig(scenarios=(scenario,),
                                 store_path=store_path),
                  cost_model=cost_model) as campaign:
        campaign_result = campaign.run()
    result = campaign_result.outcomes[0].result
    smallest = tuple(
        task.space.decode(task.space.smallest_indices())
        for task in workload.tasks)
    lower_bounds = monte_carlo_designs(
        smallest, workload, allocation=allocation, cost_model=cost_model,
        runs=lower_bound_designs, seed=seed + 1)
    lb_accuracies = tuple(
        surrogate.accuracy(net) for net in smallest)
    return Fig6Result(
        workload=workload,
        explored=result.explored,
        lower_bounds=lower_bounds,
        lower_bound_accuracies=lb_accuracies,
        best=result.best,
        trainings_run=result.trainings_run,
        trainings_skipped=result.trainings_skipped,
        campaign=campaign_result,
    )


def format_fig6(result: Fig6Result) -> str:
    """Render one panel as a summary table."""
    wl = result.workload
    rows: list[list[object]] = []
    feasible = [s for s in result.explored if s.feasible]
    rows.append([
        "explored by NASAIC", f"{len(result.explored)} solutions",
        "all meet specs" if result.all_explored_feasible
        else "SOME VIOLATE", "", ""])
    lb_acc = "/".join(
        task.space.dataset + "=" + f"{a:.4g}"
        for task, a in zip(wl.tasks, result.lower_bound_accuracies))
    rows.append(["lower bounds (smallest nets)",
                 f"{len(result.lower_bounds)} designs", lb_acc, "", ""])
    if result.best is not None:
        acc = "/".join(f"{a:.4g}" for a in result.best.accuracies)
        util = result.spec_utilisation()
        rows.append([
            "best solution", result.best.accelerator.describe(), acc,
            f"L={result.best.latency_cycles:.3g} "
            f"E={result.best.energy_nj:.3g} "
            f"A={result.best.area_um2:.3g}",
            f"{util[0]:.1%}/{util[1]:.1%}/{util[2]:.1%} of specs"])
    else:
        rows.append(["best solution", "none feasible", "", "", ""])
    title = (f"Fig. 6 [{wl.name}] specs {wl.specs.describe()} | "
             f"trainings run {result.trainings_run}, "
             f"skipped by early pruning {result.trainings_skipped}")
    return format_table(
        ["series", "hardware", "accuracy", "metrics", "spec utilisation"],
        rows, title=title)
