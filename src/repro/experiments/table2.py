"""Table II — single vs homogeneous vs heterogeneous accelerators on W3.

Four accelerator configurations for the two-CIFAR-10 workload:

- **NAS**: architecture search without hardware awareness, deployed on
  the maximum-resource single accelerator ``<dla, 4096, 64>`` — reaches
  the highest accuracy (94.17% in the paper) but violates the specs;
- **Single Acc.**: one sub-accelerator runs one searched network twice
  *sequentially*, so the latency and energy specs are halved for the
  search (91.45%);
- **Homo. Acc.**: two identical sub-accelerators run the same searched
  network *simultaneously*, so energy and area are halved per
  sub-accelerator (92.00%);
- **Hetero. Acc. (NASAIC)**: the full co-exploration — two distinct
  networks on two heterogeneous sub-accelerators (93.23% / 91.11%).

Expected shape: NAS > hetero-best > homo > single > hetero-second on
accuracy, with every configuration except NAS meeting the specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.accelerator import HeterogeneousAccelerator, ResourceBudget
from repro.accel.allocation import AllocationSpace
from repro.accel.dataflow import Dataflow
from repro.accel.subaccelerator import SubAccelerator
from repro.core.baselines import run_nas
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Scenario,
)
from repro.core.evaluator import Evaluator
from repro.core.results import ExploredSolution
from repro.core.search import NASAICConfig
from repro.cost.model import CostModel
from repro.train.surrogate import default_surrogate
from repro.train.trainer import SurrogateTrainer
from repro.utils.tables import format_table
from repro.workloads.workload import (
    DesignSpecs,
    PenaltyBounds,
    Task,
    Workload,
)

__all__ = ["Table2Result", "Table2Row", "format_table2", "run_table2"]


@dataclass
class Table2Row:
    """One accelerator-configuration row.

    ``architectures``/``accuracies`` hold one entry per distinct network
    (two for the heterogeneous row, one otherwise).  The hardware metrics
    are expressed at *workload* level (both task executions included) so
    all rows are compared against the same W3 specs.
    """

    approach: str
    hardware: str
    architectures: tuple[tuple[int, ...], ...]
    accuracies: tuple[float, ...]
    latency_cycles: float
    energy_nj: float
    area_um2: float
    meets_specs: bool


@dataclass
class Table2Result:
    """All four rows plus the workload they were evaluated against."""

    workload: Workload
    rows: list[Table2Row]
    #: Consolidated campaign record of the three constrained searches.
    campaign: CampaignResult | None = None

    def row(self, approach: str) -> Table2Row:
        for row in self.rows:
            if row.approach == approach:
                return row
        raise KeyError(f"no row for approach {approach!r}")


def _single_task_workload(base: Workload, name: str,
                          specs: DesignSpecs) -> Workload:
    """A one-task CIFAR-10 workload reusing the base task's space."""
    task = base.tasks[0]
    return Workload(
        name=name,
        tasks=(Task(task.name, task.space, weight=1.0),),
        specs=specs,
        bounds=PenaltyBounds.from_specs(specs),
    )


def run_table2(
    workload: Workload,
    *,
    nas_episodes: int = 300,
    nasaic_episodes: int = 500,
    seed: int = 53,
    nasaic_config: NASAICConfig | None = None,
    hetero_restarts: int = 3,
    nas_restarts: int = 2,
    store_path=None,
) -> Table2Result:
    """Regenerate Table II for the two-CIFAR workload ``workload``.

    ``hetero_restarts``/``nas_restarts`` run the heterogeneous
    co-exploration and the NAS row from several seeds and keep the best
    outcome — REINFORCE runs have seed variance, and the heterogeneous
    joint space is by far the largest of the four configurations.
    ``store_path`` plugs a persistent evaluation store under the
    campaign so regenerations warm-start from prior pricing.
    """
    if workload.num_tasks != 2:
        raise ValueError("Table II expects the two-task W3 workload")
    specs = workload.specs
    cost_model = CostModel()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    evaluator = Evaluator(workload, cost_model, SurrogateTrainer(surrogate))
    rows: list[Table2Row] = []

    # -- NAS: no hardware awareness, maximum single accelerator --------
    nas_wl = _single_task_workload(workload, "W3-nas", specs)
    nas = run_nas(nas_wl, surrogate=surrogate, episodes=nas_episodes,
                  seed=seed)
    for restart in range(1, max(1, nas_restarts)):
        other = run_nas(nas_wl, surrogate=surrogate,
                        episodes=nas_episodes, seed=seed + 100 * restart)
        if other.best_weighted > nas.best_weighted:
            nas = other
    nas_net = nas.best_networks[0]
    full_hw = HeterogeneousAccelerator(
        (SubAccelerator(Dataflow.NVDLA, 4096, 64),))
    nas_eval = evaluator.evaluate_hardware((nas_net, nas_net), full_hw)
    rows.append(Table2Row(
        approach="NAS", hardware=full_hw.describe(),
        architectures=(nas_net.genotype,),
        accuracies=(nas.best_accuracies[0],),
        latency_cycles=nas_eval.latency_cycles,
        energy_nj=nas_eval.energy_nj, area_um2=nas_eval.area_um2,
        meets_specs=nas_eval.feasible))

    # -- The three constrained searches run as one campaign ------------
    # Scenarios share the table's cost model (one cross-design memo for
    # all rows) and the heterogeneous restarts share one evaluation
    # cache (same workload, same context); outcomes are consumed from
    # the consolidated campaign record.
    single_specs = DesignSpecs(
        latency_cycles=specs.latency_cycles // 2,
        energy_nj=specs.energy_nj / 2,
        area_um2=specs.area_um2)
    single_wl = _single_task_workload(workload, "W3-single", single_specs)
    single_alloc = AllocationSpace(num_slots=1, allow_empty_slots=False)
    single_cfg = _scaled_config(nasaic_config, nasaic_episodes, seed + 1)

    homo_specs = DesignSpecs(
        latency_cycles=specs.latency_cycles,
        energy_nj=specs.energy_nj / 2,
        area_um2=specs.area_um2 / 2)
    homo_wl = _single_task_workload(workload, "W3-homo", homo_specs)
    homo_alloc = AllocationSpace(
        num_slots=1, allow_empty_slots=False,
        budget=ResourceBudget(max_pes=2048, max_bandwidth_gbps=32))
    homo_cfg = _scaled_config(nasaic_config, nasaic_episodes, seed + 2)

    def _scenario(label: str, wl: Workload, cfg: NASAICConfig,
                  allocation: AllocationSpace | None) -> Scenario:
        options = {"config": cfg, "surrogate": surrogate}
        if allocation is not None:
            options["allocation"] = allocation
        return Scenario(workload=wl, strategy="nasaic",
                        budget=cfg.episodes, seed=cfg.seed, rho=cfg.rho,
                        label=label, options=options)

    scenarios = [
        _scenario("single", single_wl, single_cfg, single_alloc),
        _scenario("homo", homo_wl, homo_cfg, homo_alloc),
    ]
    # The heterogeneous search space is the product of two architecture
    # spaces and two hardware slots; give it an episode budget
    # proportional to the task count, and restart from several seeds.
    hetero_labels = []
    for restart in range(max(1, hetero_restarts)):
        hetero_cfg = _scaled_config(
            nasaic_config, nasaic_episodes, seed + 3 + restart,
            episode_factor=workload.num_tasks)
        label = f"hetero/r{restart}"
        hetero_labels.append(label)
        scenarios.append(_scenario(label, workload, hetero_cfg, None))
    with Campaign(CampaignConfig(scenarios=tuple(scenarios),
                                 store_path=store_path),
                  cost_model=cost_model) as campaign:
        campaign_result = campaign.run()

    single = campaign_result.outcome("single").result
    rows.append(_degenerate_row("Single Acc.", single.best, sequential=True,
                                specs=specs))
    homo = campaign_result.outcome("homo").result
    rows.append(_degenerate_row("Homo. Acc.", homo.best, sequential=False,
                                specs=specs))
    best = None
    for label in hetero_labels:
        hetero = campaign_result.outcome(label).result
        if hetero.best is None:
            continue
        if (best is None
                or hetero.best.weighted_accuracy > best.weighted_accuracy):
            best = hetero.best
    if best is None:
        raise RuntimeError("NASAIC found no feasible W3 solution; "
                           "increase episodes")
    rows.append(Table2Row(
        approach="Hetero. Acc. (NASAIC)",
        hardware=best.accelerator.describe(),
        architectures=best.genotypes,
        accuracies=best.accuracies,
        latency_cycles=best.latency_cycles,
        energy_nj=best.energy_nj, area_um2=best.area_um2,
        meets_specs=best.feasible))
    return Table2Result(workload=workload, rows=rows,
                        campaign=campaign_result)


def _scaled_config(base: NASAICConfig | None, episodes: int,
                   seed: int, *, episode_factor: int = 1) -> NASAICConfig:
    if base is None:
        return NASAICConfig(episodes=episodes * episode_factor, seed=seed)
    return NASAICConfig(
        episodes=base.episodes * episode_factor, hw_steps=base.hw_steps,
        rho=base.rho, seed=seed, controller=base.controller,
        reinforce=base.reinforce)


def _degenerate_row(approach: str, best: ExploredSolution | None,
                    *, sequential: bool, specs: DesignSpecs) -> Table2Row:
    """Scale a single-network solution back to workload level.

    Sequential execution doubles latency and energy; simultaneous
    execution on duplicated hardware doubles energy and area.
    """
    if best is None:
        raise RuntimeError(
            f"{approach}: search found no feasible solution; increase "
            "episodes")
    if sequential:
        latency = 2 * best.latency_cycles
        energy = 2 * best.energy_nj
        area = float(best.area_um2)
        hardware = best.accelerator.describe()
    else:
        latency = float(best.latency_cycles)
        energy = 2 * best.energy_nj
        area = 2 * best.area_um2
        hardware = "2x " + best.accelerator.describe()
    return Table2Row(
        approach=approach, hardware=hardware,
        architectures=best.genotypes, accuracies=best.accuracies,
        latency_cycles=latency, energy_nj=energy, area_um2=area,
        meets_specs=specs.satisfied_by(latency, energy, area))


def format_table2(result: Table2Result) -> str:
    """Render the rows in the paper's Table II layout."""
    rows: list[list[object]] = []
    for row in result.rows:
        archs = " & ".join(str(g) for g in row.architectures)
        accs = " / ".join(f"{a:.2f}%" for a in row.accuracies)
        rows.append([
            row.approach, row.hardware, archs, accs,
            f"{row.latency_cycles:.3g}", f"{row.energy_nj:.3g}",
            f"{row.area_um2:.3g}",
            "meets" if row.meets_specs else "VIOLATES"])
    title = (f"Table II [{result.workload.name}] specs "
             f"{result.workload.specs.describe()} "
             "(genotype <FN0, FN1, SK1, FN2, SK2, FN3, SK3>)")
    return format_table(
        ["approach", "hardware", "architecture", "accuracy", "L/cycles",
         "E/nJ", "A/um2", "specs"],
        rows, title=title)
