"""Fig. 1 — the motivation study on single-task CIFAR-10.

The figure plots, in (latency, energy, area) space:

- **circles**: solutions from *successive* NAS then ASIC design — the
  accuracy-only NAS winner paired with every design from a hardware
  sweep; the paper shows all of them violate the design specs
  (accuracy 94.17%);
- **triangle**: hardware-aware NAS for one fixed ASIC design (90.64%);
- **square**: the heuristic that picks the feasible joint solution
  closest to the specs (89.95%);
- **star**: the best feasible solution among 10,000 joint Monte-Carlo
  runs (92.58%).

The reproduction regenerates each point set and the accuracy
annotations.  Expected shape: every NAS->ASIC pairing infeasible; the MC
optimum beats both the hardware-aware-NAS point and the
closest-to-specs heuristic; all three trail the unconstrained NAS
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.allocation import AllocationSpace
from repro.core.baselines import (
    closest_to_spec_design,
    closest_to_spec_solution,
    hardware_aware_nas,
    monte_carlo_designs,
    monte_carlo_search,
    run_nas,
)
from repro.core.evaluator import HardwareEvaluation
from repro.core.results import ExploredSolution
from repro.cost.model import CostModel
from repro.train.surrogate import default_surrogate
from repro.utils.tables import format_table
from repro.workloads.presets import fig1_workload
from repro.workloads.workload import Workload

__all__ = ["Fig1Result", "format_fig1", "run_fig1"]


@dataclass
class Fig1Result:
    """All point sets of the Fig. 1 scatter."""

    workload: Workload
    nas_accuracy: float
    nas_asic_points: list[HardwareEvaluation]
    hw_aware_nas_point: ExploredSolution | None
    heuristic_point: ExploredSolution | None
    mc_optimal_point: ExploredSolution | None

    @property
    def nas_asic_any_feasible(self) -> bool:
        """Whether successive NAS->ASIC found any spec-compliant design."""
        return any(e.feasible for e in self.nas_asic_points)


def run_fig1(
    *,
    nas_episodes: int = 300,
    hw_nas_episodes: int = 300,
    mc_runs: int = 10_000,
    design_sweep_runs: int = 800,
    seed: int = 41,
) -> Fig1Result:
    """Regenerate every point set of Fig. 1.

    Args:
        nas_episodes: Episodes for the accuracy-only NAS phase.
        hw_nas_episodes: Episodes for the hardware-aware NAS phase.
        mc_runs: Joint Monte-Carlo runs (paper: 10,000).
        design_sweep_runs: Hardware designs sampled for the NAS winner
            (the circle cloud).
        seed: Master seed.
    """
    workload = fig1_workload()
    allocation = AllocationSpace()
    cost_model = CostModel()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    # Circles: NAS first, then a hardware sweep for its winner.
    nas = run_nas(workload, allocation=allocation, surrogate=surrogate,
                  episodes=nas_episodes, seed=seed)
    circles = monte_carlo_designs(
        nas.best_networks, workload, allocation=allocation,
        cost_model=cost_model, runs=design_sweep_runs, seed=seed + 1)
    # Star + square: joint Monte-Carlo exploration.
    mc = monte_carlo_search(workload, allocation=allocation,
                            cost_model=cost_model, surrogate=surrogate,
                            runs=mc_runs, seed=seed + 2)
    heuristic = closest_to_spec_solution(mc.explored, workload.specs)
    # Triangle: hardware-aware NAS on one fixed design (the design a
    # designer would pick without co-exploration: closest to the specs
    # for the NAS winner).
    fixed = closest_to_spec_design(circles, workload.specs)
    hw_nas = hardware_aware_nas(
        workload, fixed.accelerator, allocation=allocation,
        cost_model=cost_model, surrogate=surrogate,
        episodes=hw_nas_episodes, seed=seed + 3)
    return Fig1Result(
        workload=workload,
        nas_accuracy=nas.best_accuracies[0],
        nas_asic_points=circles,
        hw_aware_nas_point=hw_nas.best,
        heuristic_point=heuristic,
        mc_optimal_point=mc.best,
    )


def format_fig1(result: Fig1Result) -> str:
    """Render the figure's annotated points as a table."""
    specs = result.workload.specs
    rows: list[list[object]] = []

    def add(label: str, acc: str, latency: float, energy: float,
            area: float) -> None:
        ok = specs.satisfied_by(latency, energy, area)
        rows.append([label, acc, f"{latency:.3g}", f"{energy:.3g}",
                     f"{area:.3g}", "meets" if ok else "VIOLATES"])

    feasible_circles = [e for e in result.nas_asic_points if e.feasible]
    closest_circle = closest_to_spec_design(result.nas_asic_points, specs)
    add("NAS->ASIC (closest design)", f"{result.nas_accuracy:.2f}%",
        closest_circle.latency_cycles, closest_circle.energy_nj,
        closest_circle.area_um2)
    for label, point in (
            ("HW-aware NAS (triangle)", result.hw_aware_nas_point),
            ("Closest-to-specs heuristic (square)", result.heuristic_point),
            ("MC optimal (star)", result.mc_optimal_point)):
        if point is None:
            rows.append([label, "none found", "-", "-", "-", "-"])
            continue
        add(label, f"{point.accuracies[0]:.2f}%", point.latency_cycles,
            point.energy_nj, point.area_um2)
    header = (f"Fig. 1 | specs {specs.describe()} | "
              f"NAS->ASIC designs swept: {len(result.nas_asic_points)}, "
              f"feasible: {len(feasible_circles)}")
    return format_table(
        ["solution", "accuracy", "latency/cycles", "energy/nJ",
         "area/um2", "specs"],
        rows, title=header)
