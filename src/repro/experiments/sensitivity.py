"""Sensitivity analysis over NASAIC's own hyperparameters.

DESIGN.md calls out the framework's design choices — the penalty weight
``rho`` (Eq. 4), the hardware-exploration depth ``phi`` (§IV-②) and the
episode budget ``beta`` — and this harness quantifies how the search
outcome responds to each, holding everything else fixed.  Expected
shapes:

- ``rho``: too small and violating solutions outscore feasible ones
  (the reward no longer enforces the specs); large values all behave
  similarly since any violation already dominates the accuracy term.
- ``phi``: more hardware steps per episode find feasible designs for
  more sampled architectures (fewer prunings), at linear hardware cost.
- ``beta``: quality is non-decreasing in episodes with diminishing
  returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.search import NASAIC, NASAICConfig
from repro.utils.tables import format_table
from repro.workloads.workload import Workload

__all__ = ["SensitivityPoint", "format_sensitivity", "run_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one configuration in a sweep."""

    parameter: str
    value: float
    best_weighted: float | None
    feasible_solutions: int
    trainings_run: int
    trainings_skipped: int


def _run_point(workload: Workload, parameter: str, value,
               base: NASAICConfig) -> SensitivityPoint:
    config = NASAICConfig(
        episodes=int(value) if parameter == "beta" else base.episodes,
        hw_steps=int(value) if parameter == "phi" else base.hw_steps,
        rho=float(value) if parameter == "rho" else base.rho,
        seed=base.seed,
        joint_batch=base.joint_batch,
        controller=base.controller,
        reinforce=base.reinforce,
    )
    result = NASAIC(workload, config=config).run()
    return SensitivityPoint(
        parameter=parameter,
        value=float(value),
        best_weighted=(result.best.weighted_accuracy
                       if result.best else None),
        feasible_solutions=len(result.feasible_solutions),
        trainings_run=result.trainings_run,
        trainings_skipped=result.trainings_skipped,
    )


def run_sensitivity(
    workload: Workload,
    *,
    episodes: int = 150,
    seed: int = 79,
    rho_values: tuple[float, ...] = (0.5, 2.0, 10.0, 50.0),
    phi_values: tuple[int, ...] = (0, 2, 10),
    beta_values: tuple[int, ...] = (50, 150, 300),
) -> list[SensitivityPoint]:
    """Sweep rho, phi and beta one at a time around a base config."""
    base = NASAICConfig(episodes=episodes, hw_steps=10, seed=seed)
    points = []
    for rho in rho_values:
        points.append(_run_point(workload, "rho", rho, base))
    for phi in phi_values:
        points.append(_run_point(workload, "phi", phi, base))
    for beta in beta_values:
        points.append(_run_point(workload, "beta", beta, base))
    return points


def format_sensitivity(points: list[SensitivityPoint],
                       workload_name: str) -> str:
    """Render the sweep as one table."""
    rows = []
    for p in points:
        rows.append([
            p.parameter, f"{p.value:g}",
            f"{p.best_weighted:.4f}" if p.best_weighted else "none",
            p.feasible_solutions, p.trainings_run, p.trainings_skipped])
    return format_table(
        ["parameter", "value", "best weighted acc", "feasible",
         "trainings", "pruned"],
        rows, title=f"Sensitivity sweep [{workload_name}]")
