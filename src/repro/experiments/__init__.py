"""Experiment harnesses regenerating every figure and table of the paper."""

from repro.experiments.export import fig1_to_csv, fig6_to_csv
from repro.experiments.fig1 import Fig1Result, format_fig1, run_fig1
from repro.experiments.fig6 import Fig6Result, format_fig6, run_fig6
from repro.experiments.sensitivity import (
    SensitivityPoint,
    format_sensitivity,
    run_sensitivity,
)
from repro.experiments.timing import (
    SearchCostReport,
    format_timing,
    run_timing,
)
from repro.experiments.table1 import (
    Table1Result,
    Table1Row,
    format_table1,
    run_table1,
)
from repro.experiments.table2 import (
    Table2Result,
    Table2Row,
    format_table2,
    run_table2,
)

__all__ = [
    "Fig1Result",
    "Fig6Result",
    "SearchCostReport",
    "SensitivityPoint",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "fig1_to_csv",
    "fig6_to_csv",
    "format_fig1",
    "format_fig6",
    "format_sensitivity",
    "format_table1",
    "format_table2",
    "format_timing",
    "run_fig1",
    "run_fig6",
    "run_sensitivity",
    "run_table1",
    "run_table2",
    "run_timing",
]
