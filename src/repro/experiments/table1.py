"""Table I — NAS->ASIC vs ASIC->HW-NAS vs NASAIC on W1 and W2.

For each multi-dataset workload the table reports, per approach: the
hardware design, per-dataset accuracy, latency/energy/area and whether
the design specs hold.  The paper's headline numbers:

- NAS->ASIC cannot meet the specs for either workload (the brute-force
  hardware sweep finds no compliant design for the NAS-chosen networks);
- NASAIC meets all specs with average accuracy loss of only 0.76% (W1)
  and 1.17% (W2) vs the unconstrained NAS accuracies, with 17.77% /
  2.49x / 2.32x latency/energy/area reductions on W1 (30.39% / 29.58% /
  30.85% on W2) against the closest NAS->ASIC design;
- NASAIC beats ASIC->HW-NAS by 0.87% CIFAR accuracy on W1 and 3.65%
  STL-10 accuracy on W2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.allocation import AllocationSpace
from repro.core.baselines import (
    PipelineResult,
    asic_then_hw_nas,
    successive_nas_then_asic,
)
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Scenario,
)
from repro.core.results import ExploredSolution
from repro.core.search import NASAICConfig
from repro.cost.model import CostModel
from repro.train.datasets import dataset_spec
from repro.train.surrogate import default_surrogate
from repro.utils.tables import format_table
from repro.workloads.workload import Workload

__all__ = ["Table1Row", "Table1Result", "format_table1", "run_table1"]


@dataclass
class Table1Row:
    """One approach's row for one workload."""

    approach: str
    solution: ExploredSolution

    @property
    def meets_specs(self) -> bool:
        return self.solution.feasible


@dataclass
class Table1Result:
    """All three approaches on one workload."""

    workload: Workload
    nas_asic: Table1Row
    asic_hw_nas: Table1Row
    nasaic: Table1Row
    #: Consolidated campaign record of the NASAIC run.
    campaign: CampaignResult | None = None

    def reductions_vs_nas_asic(self) -> tuple[float, float, float]:
        """NASAIC's (latency, energy, area) reduction vs NAS->ASIC.

        Latency as a fractional reduction, energy/area as ratios — the
        units the paper quotes (17.77%, 2.49x, 2.32x for W1).
        """
        ref, ours = self.nas_asic.solution, self.nasaic.solution
        lat = 1.0 - ours.latency_cycles / ref.latency_cycles
        energy = ref.energy_nj / ours.energy_nj
        area = ref.area_um2 / ours.area_um2
        return lat, energy, area

    def accuracy_loss_vs_nas(self) -> float:
        """Average display-unit accuracy drop of NASAIC vs the NAS nets."""
        ref = self.nas_asic.solution.accuracies
        ours = self.nasaic.solution.accuracies
        return sum(r - o for r, o in zip(ref, ours)) / len(ref)


def _row_from_pipeline(result: PipelineResult) -> Table1Row:
    return Table1Row(approach=result.name, solution=result.solution)


def run_table1(
    workload: Workload,
    *,
    nas_episodes: int = 300,
    nasaic_episodes: int = 500,
    mc_runs: int = 2_000,
    seed: int = 47,
    nasaic_config: NASAICConfig | None = None,
    store_path=None,
) -> Table1Result:
    """Regenerate one workload's rows of Table I.

    ``store_path`` plugs a persistent evaluation store under the NASAIC
    campaign: regenerating the table after a parameter tweak (or a
    crash) reprices only designs the store has never seen.
    """
    allocation = AllocationSpace()
    cost_model = CostModel()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    nas_asic = successive_nas_then_asic(
        workload, allocation=allocation, cost_model=cost_model,
        surrogate=surrogate, nas_episodes=nas_episodes, seed=seed)
    hw_nas = asic_then_hw_nas(
        workload, allocation=allocation, cost_model=cost_model,
        surrogate=surrogate, mc_runs=mc_runs, nas_episodes=nas_episodes,
        seed=seed + 1, reference_networks=nas_asic.networks)
    if nasaic_config is None:
        nasaic_config = NASAICConfig(episodes=nasaic_episodes,
                                     seed=seed + 2)
    # The NASAIC row runs as a one-scenario campaign over the shared
    # cost model, and the table consumes its consolidated outcome.
    scenario = Scenario(
        workload=workload, strategy="nasaic",
        budget=nasaic_config.episodes, seed=nasaic_config.seed,
        rho=nasaic_config.rho,
        options={"config": nasaic_config, "allocation": allocation,
                 "surrogate": surrogate})
    with Campaign(CampaignConfig(scenarios=(scenario,),
                                 store_path=store_path),
                  cost_model=cost_model) as campaign:
        campaign_result = campaign.run()
    result = campaign_result.outcomes[0].result
    if result.best is None:
        raise RuntimeError(
            f"NASAIC found no feasible solution on {workload.name}; "
            "increase episodes")
    return Table1Result(
        workload=workload,
        nas_asic=_row_from_pipeline(nas_asic),
        asic_hw_nas=_row_from_pipeline(hw_nas),
        nasaic=Table1Row(approach="NASAIC", solution=result.best),
        campaign=campaign_result,
    )


def format_table1(results: list[Table1Result]) -> str:
    """Render workload rows in the paper's Table I layout."""
    rows: list[list[object]] = []
    for result in results:
        wl = result.workload
        for row in (result.nas_asic, result.asic_hw_nas, result.nasaic):
            sol = row.solution
            for idx, task in enumerate(wl.tasks):
                spec = dataset_spec(task.dataset)
                rows.append([
                    wl.name if idx == 0 else "",
                    row.approach if idx == 0 else "",
                    sol.accelerator.describe() if idx == 0 else "",
                    task.dataset,
                    spec.format_metric(sol.accuracies[idx]),
                    f"{sol.latency_cycles:.3g}" if idx == 0 else "",
                    f"{sol.energy_nj:.3g}" if idx == 0 else "",
                    f"{sol.area_um2:.3g}" if idx == 0 else "",
                    ("meets" if sol.feasible else "VIOLATES")
                    if idx == 0 else "",
                ])
    table = format_table(
        ["work.", "approach", "hardware", "dataset", "accuracy",
         "L/cycles", "E/nJ", "A/um2", "specs"],
        rows, title="Table I")
    notes = []
    for result in results:
        lat, energy, area = result.reductions_vs_nas_asic()
        notes.append(
            f"{result.workload.name}: NASAIC vs NAS->ASIC reductions "
            f"L {lat:.2%}, E {energy:.2f}x, A {area:.2f}x; "
            f"avg accuracy loss {result.accuracy_loss_vs_nas():.2f}")
    return table + "\n" + "\n".join(notes)
