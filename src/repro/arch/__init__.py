"""Neural architecture substrate: layer IR, backbones and search spaces."""

from repro.arch.layers import ConvLayer, dense_layer
from repro.arch.network import NetworkArch
from repro.arch.resnet import (
    ResNetSpace,
    cifar10_resnet_space,
    stl10_resnet_space,
)
from repro.arch.space import ArchitectureSpace, Choice
from repro.arch.unet import UNetSpace, nuclei_unet_space

__all__ = [
    "ArchitectureSpace",
    "Choice",
    "ConvLayer",
    "NetworkArch",
    "ResNetSpace",
    "UNetSpace",
    "cifar10_resnet_space",
    "dense_layer",
    "nuclei_unet_space",
    "stl10_resnet_space",
]
