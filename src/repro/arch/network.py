"""Network architecture container.

A :class:`NetworkArch` is the decoded form of one point in a backbone's
search space: an ordered chain of :class:`~repro.arch.layers.ConvLayer`
records plus the genotype that produced it.  Layers execute in chain order
— within one network, layer ``j`` consumes layer ``j-1``'s output, so two
layers of the same network can never run concurrently even when mapped to
different sub-accelerators.  (Residual skip-adds and U-Net concatenations
join *earlier* outputs into that chain and do not relax the ordering.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.layers import ConvLayer

__all__ = ["NetworkArch"]


@dataclass(frozen=True)
class NetworkArch:
    """A concrete neural architecture produced by decoding a genotype.

    Attributes:
        name: Identifier, e.g. ``"resnet9-cifar10"``.
        backbone: Backbone family name (``"resnet9"`` or ``"unet"``).
        dataset: Dataset key the network targets (see
            :mod:`repro.train.datasets`).
        genotype: The option-*value* tuple that produced this network, in
            the paper's display order (e.g. ``(FN0, FN1, SK1, ...)``).
        layers: Ordered chain of layers.
    """

    name: str
    backbone: str
    dataset: str
    genotype: tuple[int, ...]
    layers: tuple[ConvLayer, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"network {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"network {self.name!r} has duplicate layer names")

    @property
    def num_layers(self) -> int:
        """Number of mapped layers in the execution chain."""
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates of one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Total weight parameter count."""
        return sum(layer.params for layer in self.layers)

    def identity(self) -> tuple:
        """Stable identity used for memoising accuracy/cost evaluations."""
        return (self.backbone, self.dataset, self.genotype)

    def describe(self) -> str:
        """Multi-line summary used by the example scripts."""
        lines = [
            f"{self.name} [{self.backbone} on {self.dataset}] "
            f"genotype={self.genotype} "
            f"({self.total_macs / 1e6:.1f} MMACs, "
            f"{self.total_params / 1e3:.1f} Kparams)"
        ]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)
