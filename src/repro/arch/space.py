"""Architecture search-space abstraction.

A search space exposes a fixed-length sequence of categorical
:class:`Choice` decisions — the interface the NASAIC controller (one RNN
*segment* per DNN, Fig. 5 of the paper) needs: it emits one option index
per choice, and :meth:`ArchitectureSpace.decode` turns that index vector
into a concrete :class:`~repro.arch.network.NetworkArch`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.arch.network import NetworkArch

__all__ = ["ArchitectureSpace", "Choice"]


@dataclass(frozen=True)
class Choice:
    """One categorical hyperparameter decision.

    Attributes:
        name: Decision name, e.g. ``"block1.filters"``.
        options: The concrete values the controller chooses among, in the
            order of the controller's softmax outputs.
    """

    name: str
    options: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 1:
            raise ValueError(f"choice {self.name!r} has no options")
        if len(set(self.options)) != len(self.options):
            raise ValueError(f"choice {self.name!r} has duplicate options")

    @property
    def num_options(self) -> int:
        return len(self.options)

    def value(self, index: int) -> int:
        """Return the option value at ``index`` with bounds checking."""
        if not 0 <= index < len(self.options):
            raise IndexError(
                f"choice {self.name!r}: index {index} out of range "
                f"[0, {len(self.options)})"
            )
        return self.options[index]

    def index_of(self, value: int) -> int:
        """Inverse of :meth:`value`."""
        try:
            return self.options.index(value)
        except ValueError:
            raise ValueError(
                f"choice {self.name!r}: {value} is not one of {self.options}"
            ) from None


class ArchitectureSpace(abc.ABC):
    """Base class for backbone search spaces (ResNet9, U-Net).

    Subclasses define :attr:`choices` and implement :meth:`decode`.
    A *genotype index vector* is a tuple of option indices, one per choice;
    a *genotype* (as displayed in the paper's Table II) is the tuple of the
    corresponding option values.
    """

    #: Backbone family name.
    backbone: str
    #: Dataset key this instance of the space targets.
    dataset: str

    @property
    @abc.abstractmethod
    def choices(self) -> tuple[Choice, ...]:
        """The fixed-length decision sequence for the controller."""

    @abc.abstractmethod
    def decode(self, indices: tuple[int, ...]) -> NetworkArch:
        """Decode a genotype index vector into a concrete network."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def validate_indices(self, indices: tuple[int, ...]) -> None:
        """Raise ``ValueError`` unless ``indices`` is a valid genotype."""
        if len(indices) != len(self.choices):
            raise ValueError(
                f"{self.backbone} space expects {len(self.choices)} "
                f"decisions, got {len(indices)}"
            )
        for choice, index in zip(self.choices, indices):
            choice.value(index)  # raises IndexError on violation

    def values(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        """Map a genotype index vector to its option values."""
        self.validate_indices(indices)
        return tuple(c.value(i) for c, i in zip(self.choices, indices))

    def indices_of(self, values: tuple[int, ...]) -> tuple[int, ...]:
        """Inverse of :meth:`values`."""
        if len(values) != len(self.choices):
            raise ValueError(
                f"{self.backbone} space expects {len(self.choices)} values, "
                f"got {len(values)}"
            )
        return tuple(c.index_of(v) for c, v in zip(self.choices, values))

    def smallest_indices(self) -> tuple[int, ...]:
        """Genotype of the smallest network (per-choice minimum value).

        Used for the paper's Fig. 6 accuracy *lower bounds* ("lower bounds
        by the smallest architectures").
        """
        return tuple(
            min(range(c.num_options), key=lambda i: c.options[i])
            for c in self.choices
        )

    def largest_indices(self) -> tuple[int, ...]:
        """Genotype of the largest network (per-choice maximum value)."""
        return tuple(
            max(range(c.num_options), key=lambda i: c.options[i])
            for c in self.choices
        )

    def random_indices(self, rng: np.random.Generator) -> tuple[int, ...]:
        """Sample a uniform random genotype index vector."""
        return tuple(int(rng.integers(c.num_options)) for c in self.choices)

    def cardinality(self) -> int:
        """Total number of genotypes in the space."""
        return math.prod(c.num_options for c in self.choices)

    def enumerate_indices(self):
        """Yield every genotype index vector (small spaces only)."""
        def rec(prefix: tuple[int, ...], rest: tuple[Choice, ...]):
            if not rest:
                yield prefix
                return
            for i in range(rest[0].num_options):
                yield from rec(prefix + (i,), rest[1:])

        yield from rec((), self.choices)
