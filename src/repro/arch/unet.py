"""U-Net search space for the segmentation task (Nuclei dataset).

Per §V-A / Fig. 3, the U-Net [26] backbone is searched over

- ``Height`` in ``[1, 5]`` — the number of encoder/decoder levels, and
- per-level filter counts ``FNi in <4*2^(i-1), 8*2^(i-1), 16*2^(i-1)>``,
  i.e. a base multiplier of 4, 8 or 16 that doubles with depth.

The genotype is fixed-length (``1 + max_height`` decisions) so the RNN
controller always emits the same number of tokens; filter decisions for
levels deeper than the chosen height are ignored during decoding, the
standard treatment for variable-depth spaces under an RNN controller.

Structure at height ``h`` (input ``128x128`` Nuclei crops):

- encoder level ``i`` (resolution ``128 / 2^(i-1)``): two 3x3 convolutions
  at ``FNi`` filters, then a stride-2 downsampling convolution entering
  level ``i+1``;
- bottleneck: two 3x3 convolutions at ``2 * FNh`` filters;
- decoder level ``i``: a 2x2 transposed convolution back to ``FNi``
  filters, then two 3x3 convolutions whose first input is the skip
  concatenation (``2 * FNi`` input channels);
- a final 1x1 convolution to a single mask channel.
"""

from __future__ import annotations

from repro.arch.layers import ConvLayer
from repro.arch.network import NetworkArch
from repro.arch.space import ArchitectureSpace, Choice

__all__ = ["UNetSpace", "nuclei_unet_space"]


class UNetSpace(ArchitectureSpace):
    """Parameterised U-Net search space.

    Args:
        dataset: Dataset key (``"nuclei"``).
        input_hw: Input resolution (height == width).
        in_channels: Input image channels.
        max_height: Maximum encoder depth (paper: 5).
        base_options: Base filter multipliers (paper: 4, 8, 16); level
            ``i`` chooses among ``base * 2^(i-1)``.
    """

    backbone = "unet"

    def __init__(
        self,
        dataset: str,
        *,
        input_hw: int = 128,
        in_channels: int = 3,
        max_height: int = 5,
        base_options: tuple[int, ...] = (4, 8, 16),
    ) -> None:
        if max_height < 1:
            raise ValueError(f"max_height must be >= 1, got {max_height}")
        if input_hw % (2 ** max_height) != 0:
            raise ValueError(
                f"input resolution {input_hw} must be divisible by "
                f"2^{max_height} for clean down/upsampling"
            )
        self.dataset = dataset
        self.input_hw = input_hw
        self.in_channels = in_channels
        self.max_height = max_height
        choices: list[Choice] = [
            Choice("height", tuple(range(1, max_height + 1)))
        ]
        for level in range(1, max_height + 1):
            scale = 2 ** (level - 1)
            choices.append(
                Choice(f"level{level}.filters",
                       tuple(base * scale for base in base_options))
            )
        self._choices = tuple(choices)

    @property
    def choices(self) -> tuple[Choice, ...]:
        return self._choices

    def decode(self, indices: tuple[int, ...]) -> NetworkArch:
        values = self.values(indices)
        height = values[0]
        filters = list(values[1:])  # per-level FNi, levels 1..max_height
        # Canonical genotype: filter choices for levels deeper than the
        # chosen height do not exist in the decoded network, so they are
        # dropped — two index vectors that differ only in unused levels
        # decode to identical networks (same identity, same accuracy).
        canonical = (height, *filters[:height])

        layers: list[ConvLayer] = []
        resolution = self.input_hw
        channels = self.in_channels
        # Encoder: two convs per level, then stride-2 downsample.
        for level in range(1, height + 1):
            fn = filters[level - 1]
            layers.append(ConvLayer(
                name=f"enc{level}.conv0", in_channels=channels,
                out_channels=fn, kernel=3, stride=1,
                in_height=resolution, in_width=resolution))
            layers.append(ConvLayer(
                name=f"enc{level}.conv1", in_channels=fn,
                out_channels=fn, kernel=3, stride=1,
                in_height=resolution, in_width=resolution))
            layers.append(ConvLayer(
                name=f"enc{level}.down", in_channels=fn,
                out_channels=fn, kernel=3, stride=2,
                in_height=resolution, in_width=resolution))
            channels = fn
            resolution //= 2
        # Bottleneck at 2x the deepest level's filters.
        bottleneck = 2 * filters[height - 1]
        layers.append(ConvLayer(
            name="mid.conv0", in_channels=channels,
            out_channels=bottleneck, kernel=3, stride=1,
            in_height=resolution, in_width=resolution))
        layers.append(ConvLayer(
            name="mid.conv1", in_channels=bottleneck,
            out_channels=bottleneck, kernel=3, stride=1,
            in_height=resolution, in_width=resolution))
        channels = bottleneck
        # Decoder: upsample, then two convs; first conv sees the skip
        # concatenation so its input channel count is fn (up) + fn (skip).
        for level in range(height, 0, -1):
            fn = filters[level - 1]
            layers.append(ConvLayer(
                name=f"dec{level}.up", in_channels=channels,
                out_channels=fn, kernel=2, stride=2,
                in_height=resolution, in_width=resolution,
                transposed=True))
            resolution *= 2
            layers.append(ConvLayer(
                name=f"dec{level}.conv0", in_channels=2 * fn,
                out_channels=fn, kernel=3, stride=1,
                in_height=resolution, in_width=resolution))
            layers.append(ConvLayer(
                name=f"dec{level}.conv1", in_channels=fn,
                out_channels=fn, kernel=3, stride=1,
                in_height=resolution, in_width=resolution))
            channels = fn
        layers.append(ConvLayer(
            name="head", in_channels=channels, out_channels=1,
            kernel=1, stride=1,
            in_height=resolution, in_width=resolution))
        return NetworkArch(
            name=f"{self.backbone}-{self.dataset}",
            backbone=self.backbone,
            dataset=self.dataset,
            genotype=canonical,
            layers=tuple(layers),
        )


def nuclei_unet_space() -> UNetSpace:
    """The Nuclei segmentation search space of §V-A / Fig. 3."""
    return UNetSpace("nuclei", input_hw=128, max_height=5,
                     base_options=(4, 8, 16))
