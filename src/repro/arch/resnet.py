"""ResNet9-family search space for the classification tasks.

The paper (Fig. 1, §V-A) uses ResNet9 [20] as the classification backbone:

- a stem convolution with ``FN0`` filters (Table II calls it "a standard
  conv instead of residual"),
- ``num_blocks`` residual blocks, block ``i`` having a stride-2 transition
  convolution to ``FNi`` filters followed by ``SKi`` residual ("skip")
  3x3 convolutions at ``FNi`` filters,
- global average pooling and a dense classifier.

CIFAR-10 uses 3 residual blocks with ``FNi in <32,64,128,256>`` and
``SKi in <0,1,2>``; STL-10 (96x96 inputs) deepens to 5 blocks, raises the
per-block maximum convolution count to 3 and the maximum filter count to
512 (§V-A).  The genotype display order matches Table II:
``<FN0, FN1, SK1, FN2, SK2, ..., FNn, SKn>``.
"""

from __future__ import annotations

from repro.arch.layers import ConvLayer, dense_layer
from repro.arch.network import NetworkArch
from repro.arch.space import ArchitectureSpace, Choice

__all__ = ["ResNetSpace", "cifar10_resnet_space", "stl10_resnet_space"]


class ResNetSpace(ArchitectureSpace):
    """Parameterised ResNet9-style search space.

    Args:
        dataset: Dataset key (``"cifar10"`` or ``"stl10"``).
        input_hw: Input resolution (height == width).
        in_channels: Input image channels.
        num_classes: Classifier width.
        num_blocks: Residual block count.
        stem_options: Candidate ``FN0`` values.
        filter_options: Candidate ``FNi`` values for residual blocks.
        skip_options: Candidate ``SKi`` values (residual convs per block).
    """

    backbone = "resnet9"

    def __init__(
        self,
        dataset: str,
        *,
        input_hw: int,
        in_channels: int = 3,
        num_classes: int = 10,
        num_blocks: int = 3,
        stem_options: tuple[int, ...] = (8, 16, 32, 64),
        filter_options: tuple[int, ...] = (32, 64, 128, 256),
        skip_options: tuple[int, ...] = (0, 1, 2),
    ) -> None:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if input_hw < 2 ** num_blocks:
            raise ValueError(
                f"input resolution {input_hw} too small for {num_blocks} "
                "stride-2 blocks"
            )
        self.dataset = dataset
        self.input_hw = input_hw
        self.in_channels = in_channels
        self.num_classes = num_classes
        self.num_blocks = num_blocks
        choices: list[Choice] = [Choice("stem.filters", tuple(stem_options))]
        for block in range(1, num_blocks + 1):
            choices.append(Choice(f"block{block}.filters",
                                  tuple(filter_options)))
            choices.append(Choice(f"block{block}.skips", tuple(skip_options)))
        self._choices = tuple(choices)

    @property
    def choices(self) -> tuple[Choice, ...]:
        return self._choices

    def decode(self, indices: tuple[int, ...]) -> NetworkArch:
        values = self.values(indices)
        stem_filters = values[0]
        layers: list[ConvLayer] = [
            ConvLayer(
                name="stem",
                in_channels=self.in_channels,
                out_channels=stem_filters,
                kernel=3,
                stride=1,
                in_height=self.input_hw,
                in_width=self.input_hw,
            )
        ]
        resolution = self.input_hw
        channels = stem_filters
        for block in range(1, self.num_blocks + 1):
            filters = values[2 * block - 1]
            skips = values[2 * block]
            layers.append(
                ConvLayer(
                    name=f"b{block}.down",
                    in_channels=channels,
                    out_channels=filters,
                    kernel=3,
                    stride=2,
                    in_height=resolution,
                    in_width=resolution,
                )
            )
            resolution = layers[-1].out_height
            channels = filters
            for skip in range(skips):
                layers.append(
                    ConvLayer(
                        name=f"b{block}.res{skip}",
                        in_channels=channels,
                        out_channels=channels,
                        kernel=3,
                        stride=1,
                        in_height=resolution,
                        in_width=resolution,
                    )
                )
        layers.append(dense_layer("classifier", channels, self.num_classes))
        return NetworkArch(
            name=f"{self.backbone}-{self.dataset}",
            backbone=self.backbone,
            dataset=self.dataset,
            genotype=values,
            layers=tuple(layers),
        )


def cifar10_resnet_space() -> ResNetSpace:
    """The CIFAR-10 search space of Fig. 1 / §V-A (3 residual blocks)."""
    return ResNetSpace(
        "cifar10",
        input_hw=32,
        num_classes=10,
        num_blocks=3,
        stem_options=(8, 16, 32, 64),
        filter_options=(32, 64, 128, 256),
        skip_options=(0, 1, 2),
    )


def stl10_resnet_space() -> ResNetSpace:
    """The STL-10 search space of §V-A.

    96x96 inputs, 5 residual blocks, up to 3 convolutions per block and up
    to 512 filters per block.
    """
    return ResNetSpace(
        "stl10",
        input_hw=96,
        num_classes=10,
        num_blocks=5,
        stem_options=(16, 32, 64),
        filter_options=(64, 128, 256, 512),
        skip_options=(0, 1, 2, 3),
    )
