"""Convolutional layer intermediate representation.

Every backbone in the search space (ResNet9, U-Net) lowers to a sequence of
:class:`ConvLayer` records.  The cost model consumes these records directly:
a layer is fully described by its channel counts, kernel, stride and input
resolution, from which MAC count, parameter count and tensor footprints are
derived — exactly the quantities MAESTRO ingests per layer.

Pooling is folded into strides (ResNet9 downsampling uses stride-2
convolutions) and U-Net upsampling is represented as a transposed
convolution, which for cost purposes performs ``K*C*R*S`` MACs per *output*
pixel, the same arithmetic form as a standard convolution evaluated at the
enlarged output resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConvLayer", "dense_layer"]


@dataclass(frozen=True)
class ConvLayer:
    """A single convolution (or transposed convolution / dense) layer.

    Attributes:
        name: Unique layer name within its network, e.g. ``"b1.res0"``.
        in_channels: Input channel count ``C``.
        out_channels: Output channel count ``K``.
        kernel: Square kernel size ``R`` (= ``S``).
        stride: Spatial stride; for a transposed convolution this is the
            upsampling factor instead.
        in_height: Input feature-map height ``Y``.
        in_width: Input feature-map width ``X``.
        transposed: Whether this layer is a transposed convolution
            (output resolution = input resolution * stride).
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_height: int
    in_width: int
    transposed: bool = False

    def __post_init__(self) -> None:
        for field in ("in_channels", "out_channels", "kernel", "stride",
                      "in_height", "in_width"):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"layer {self.name!r}: {field} must be a positive "
                    f"integer, got {value!r}"
                )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def out_height(self) -> int:
        """Output feature-map height ``Y'`` (same-padding convention)."""
        if self.transposed:
            return self.in_height * self.stride
        return math.ceil(self.in_height / self.stride)

    @property
    def out_width(self) -> int:
        """Output feature-map width ``X'`` (same-padding convention)."""
        if self.transposed:
            return self.in_width * self.stride
        return math.ceil(self.in_width / self.stride)

    @property
    def out_pixels(self) -> int:
        """Number of output spatial positions ``X' * Y'``."""
        return self.out_height * self.out_width

    # ------------------------------------------------------------------
    # Arithmetic and storage volumes
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Total multiply-accumulates: ``K * C * R * S * X' * Y'``."""
        return (self.out_channels * self.in_channels
                * self.kernel * self.kernel * self.out_pixels)

    @property
    def params(self) -> int:
        """Weight parameter count ``K * C * R * S`` (bias omitted)."""
        return (self.out_channels * self.in_channels
                * self.kernel * self.kernel)

    @property
    def ifmap_elems(self) -> int:
        """Input activation element count ``C * X * Y``."""
        return self.in_channels * self.in_height * self.in_width

    @property
    def ofmap_elems(self) -> int:
        """Output activation element count ``K * X' * Y'``."""
        return self.out_channels * self.out_pixels

    @property
    def weight_elems(self) -> int:
        """Weight element count (alias of :attr:`params`)."""
        return self.params

    def describe(self) -> str:
        """One-line human-readable summary used by example scripts."""
        arrow = "^" if self.transposed else ""
        return (f"{self.name}: {self.in_channels}->{self.out_channels} "
                f"k{self.kernel}s{self.stride}{arrow} "
                f"@{self.in_height}x{self.in_width}"
                f"->{self.out_height}x{self.out_width} "
                f"({self.macs / 1e6:.1f} MMACs)")


def dense_layer(name: str, in_features: int, out_features: int) -> ConvLayer:
    """Model a fully-connected layer as a 1x1 convolution on a 1x1 map.

    A dense layer performing ``in_features * out_features`` MACs is
    arithmetically identical to a pointwise convolution over a single
    spatial position, which lets the cost model treat classifier heads
    uniformly with convolutional trunks.
    """
    return ConvLayer(
        name=name,
        in_channels=in_features,
        out_channels=out_features,
        kernel=1,
        stride=1,
        in_height=1,
        in_width=1,
    )
