"""Shared low-level helpers: seeded RNGs, stable hashing, units, tables.

These utilities sit below every other ``repro`` subpackage and must not
import from any of them.
"""

from repro.utils.hashing import stable_hash, stable_unit_float
from repro.utils.pool import pool_context
from repro.utils.rng import new_rng, spawn_rng
from repro.utils.tables import format_table
from repro.utils.units import (
    CYCLES_PER_SECOND,
    gbps_to_bytes_per_cycle,
    um2_to_mm2,
)

__all__ = [
    "CYCLES_PER_SECOND",
    "format_table",
    "gbps_to_bytes_per_cycle",
    "new_rng",
    "pool_context",
    "spawn_rng",
    "stable_hash",
    "stable_unit_float",
    "um2_to_mm2",
]
