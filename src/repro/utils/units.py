"""Unit conventions used throughout the cost model and experiments.

The accelerator clock is fixed at 1 GHz, matching the convention MAESTRO
uses when it reports latency in cycles and NoC bandwidth in GB/s: at 1 GHz,
``1 GB/s == 1 byte/cycle``.  Energies are reported in nJ and areas in um^2,
the units of the paper's Table I.
"""

from __future__ import annotations

__all__ = ["CYCLES_PER_SECOND", "gbps_to_bytes_per_cycle", "um2_to_mm2"]

#: Accelerator clock frequency (Hz); 1 GHz per the MAESTRO convention.
CYCLES_PER_SECOND: float = 1e9


def gbps_to_bytes_per_cycle(gbps: float) -> float:
    """Convert NoC bandwidth in GB/s to bytes per clock cycle at 1 GHz."""
    if gbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {gbps}")
    return gbps * 1e9 / CYCLES_PER_SECOND


def um2_to_mm2(um2: float) -> float:
    """Convert an area from um^2 (Table I unit) to mm^2 (Fig. 1 unit)."""
    return um2 / 1e6
