"""Seeded random number generation.

Every stochastic component in the reproduction (controller sampling,
Monte-Carlo baselines, surrogate jitter) draws from a
:class:`numpy.random.Generator` created through this module so that full
experiment runs are reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "spawn_rng"]


def new_rng(seed: int | None) -> np.random.Generator:
    """Create a fresh generator from an integer seed.

    ``None`` yields an OS-seeded generator; experiments should always pass
    an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Deriving children (rather than sharing one generator) keeps component
    randomness decoupled: e.g. adding extra controller samples does not
    perturb the Monte-Carlo baseline sequence.
    """
    if stream < 0:
        raise ValueError(f"stream must be non-negative, got {stream}")
    seed = int(rng.bit_generator.seed_seq.generate_state(1)[0])  # type: ignore[union-attr]
    return np.random.default_rng((seed, stream))
