"""Seeded random number generation.

Every stochastic component in the reproduction (controller sampling,
Monte-Carlo baselines, surrogate jitter) draws from a
:class:`numpy.random.Generator` created through this module so that full
experiment runs are reproducible from a single integer seed.

Seeding contract (relied on by ``tests/test_golden_search.py``):

1. Every public entry point that draws randomness takes an explicit
   integer ``seed`` and derives *all* of its generators from it — either
   directly (:func:`new_rng`) or as named sub-streams
   (:func:`spawn_rng`), so adding draws to one component never perturbs
   another.
2. ``new_rng(None)`` (OS entropy) is reserved for interactive
   experimentation; no library code path may reach it implicitly.
   Components with an optional ``rng`` argument must default to a
   *fixed* documented seed (e.g. ``RNNController`` uses seed 0), never
   to an unseeded generator.
3. Evaluation is RNG-free: the hardware path (cost model + HAP) and the
   surrogate accuracy landscape (:func:`repro.utils.hashing.stable_hash`
   jitter) are pure functions of their inputs.  This is what lets the
   evaluation service cache, batch and parallelise evaluations without
   changing search trajectories.
4. Checkpoint/resume never re-seeds.  The unified search driver
   (:mod:`repro.core.driver`) snapshots every live generator's exact
   stream position with :func:`rng_state` and restores it with
   :func:`restore_rng`, so a killed-and-resumed run continues the same
   stream bit-identically.  Strategies must checkpoint *every* generator
   they own; creating a fresh generator on resume — even from the same
   seed — would replay draws and desynchronise the trajectory.

CLI seed plumbing: every search subcommand (``search``, ``evolve``,
``nas``, ``mc``, ``campaign``) exposes ``--seed`` and passes it verbatim
as the master seed of the underlying strategy; per-strategy sub-streams
are derived inside the strategy (rule 1), never in the CLI.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "restore_rng", "rng_state", "spawn_rng"]


def new_rng(seed: int | None) -> np.random.Generator:
    """Create a fresh generator from an integer seed.

    ``None`` yields an OS-seeded generator; experiments should always pass
    an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Deriving children (rather than sharing one generator) keeps component
    randomness decoupled: e.g. adding extra controller samples does not
    perturb the Monte-Carlo baseline sequence.
    """
    if stream < 0:
        raise ValueError(f"stream must be non-negative, got {stream}")
    seed = int(rng.bit_generator.seed_seq.generate_state(1)[0])  # type: ignore[union-attr]
    return np.random.default_rng((seed, stream))


def rng_state(rng: np.random.Generator) -> dict:
    """Picklable snapshot of a generator's exact stream position.

    Unlike re-seeding, restoring this state resumes the stream at the
    very next draw — the property checkpoint/resume relies on.
    """
    return rng.bit_generator.state


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`rng_state` snapshot."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
