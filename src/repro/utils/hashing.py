"""Stable, process-independent hashing.

Python's builtin ``hash`` is salted per process which would make surrogate
accuracy jitter (seeded by architecture identity) irreproducible across
runs.  We hash a canonical string encoding with BLAKE2 instead.
"""

from __future__ import annotations

import hashlib
from typing import Any

__all__ = ["stable_hash", "stable_unit_float"]


def _canonical(obj: Any) -> str:
    """Render nested tuples/lists/dicts/scalars into a canonical string."""
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        inner = ",".join(f"{_canonical(k)}:{_canonical(v)}" for k, v in items)
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        return "(" + ",".join(_canonical(x) for x in obj) + ")"
    if isinstance(obj, float):
        return format(obj, ".12g")
    return repr(obj)


def stable_hash(obj: Any, *, salt: str = "") -> int:
    """Return a 64-bit stable hash of ``obj``.

    The result is identical across processes and platforms for equal
    canonical encodings.
    """
    payload = (salt + "|" + _canonical(obj)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def stable_unit_float(obj: Any, *, salt: str = "") -> float:
    """Map ``obj`` to a deterministic float uniformly spread in [0, 1)."""
    return stable_hash(obj, salt=salt) / float(1 << 64)
