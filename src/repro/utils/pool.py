"""Process-pool start-method selection shared by every pool user.

The evaluation service and the campaign runner both fan work out over
:class:`concurrent.futures.ProcessPoolExecutor`.  Fork is the preferred
start method — workers inherit loaded modules, so start-up is cheap and
nothing needs to pickle — but it does not exist everywhere (Windows has
no fork; macOS defaults to spawn for good reasons).  Hard-coding
``get_context("fork")`` therefore crashes ``--workers > 1`` on those
platforms.

:func:`pool_context` centralises the policy: use fork when the platform
offers it, otherwise fall back to the platform's default start method —
but only after verifying that everything the pool must ship to workers
(the worker callable, initializer, init arguments, job payloads)
actually pickles, because spawn/forkserver workers receive state by
pickling rather than by inheritance.  An unpicklable closure fails
immediately with a clear message instead of dying later inside the pool
with an opaque ``PicklingError`` traceback.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Iterable

__all__ = ["pool_context"]


def pool_context(*, require_picklable: Iterable[Any] = ()):
    """Best available multiprocessing context for a process pool.

    Args:
        require_picklable: Objects the pool would have to pickle under a
            non-fork start method (worker callables, initializer
            arguments, job payloads).  Only checked when fork is
            unavailable — fork inherits them instead.

    Returns:
        A multiprocessing context: fork where available, otherwise the
        platform default.

    Raises:
        RuntimeError: If fork is unavailable and one of the required
            objects cannot be pickled (so no start method can run the
            pool).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        pass  # platform without fork: fall back below
    context = multiprocessing.get_context()
    for obj in require_picklable:
        try:
            pickle.dumps(obj)
        except Exception as exc:
            raise RuntimeError(
                f"process pools need the start method "
                f"{context.get_start_method()!r} on this platform (no "
                f"fork), which ships work to workers by pickling — but "
                f"{obj!r} is not picklable; run with workers <= 1 "
                f"instead") from exc
    return context
