"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the same rows the paper's tables report;
this module renders them as aligned ASCII so the output is directly
comparable with the publication.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "+".join("-" * (w + 2) for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    for idx, row in enumerate(cells):
        padded = " | ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(padded.rstrip())
        if idx == 0:
            lines.append(sep)
    lines.append(sep)
    return "\n".join(lines)
