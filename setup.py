"""Legacy setuptools shim.

This environment ships setuptools without the ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail; keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy develop path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
