"""HAP benchmarks: heuristic quality and uncached single-design pricing.

Two studies share this file:

- **Ablation A** (``test_hap_heuristic_quality``): the paper replaces the
  optimal (ILP) mapper with the heuristic of Shao et al. [29] for speed;
  this quantifies the energy optimality gap on random small instances.
- **Pricing speedup** (``test_uncached_pricing_speedup`` / ``main``): the
  acceptance gate.  It prices a trace of sampled joint-workload designs
  end to end (problem build + ``solve_hap``) through three kernel modes:

  - the PR-1 baseline (scalar per-pair cost oracle + memoised full-replay
    move pricing: a fresh ``CostModel`` and ``build(batched=False)`` per
    design, ``solve_hap(resume=False)``),
  - the scalar delta-resume path (union-primed ``build_many`` + certified
    prune bounds + in-replay abort, ``solve_hap(batched=False)``),
  - the batched array kernel (the default: one vectorised bound mask per
    sweep, union-primed ``build_many``, lockstep waves per the wave cost
    model),

  asserts all three return **bit-identical** ``HAPResult``\\ s, and gates
  the batched-over-baseline wall-clock ratio at >= 6x.  Timing is
  interleaved (each repeat times every path back to back, minima are
  compared) so shared-runner load hits all paths alike.

Machine-readable record: ``benchmarks/results/BENCH_hap.json`` with keys
``speedup`` (gated, batched vs PR-1), ``speedup_scalar`` (scalar
delta-resume vs PR-1, informational), ``baseline_ms`` / ``scalar_ms`` /
``fast_ms`` (per-trace wall-clock), ``designs``, ``latency_constraint``,
``gate``, and ``pricing`` (the batched path's counters: ``moves_priced``,
``pruned``, ``resumed``, ``steps_saved``, ``steps_replayed``,
``full_replays``, ``memo_hits``, ``batched_rounds``, ``batch_width`` —
see :class:`repro.mapping.schedule.MoveStats`), so the perf trajectory is
tracked across PRs.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_hap.py [--quick]

or through pytest (``pytest benchmarks/bench_hap.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.conftest import run_once, write_json, write_report
from repro.accel import AllocationSpace, ResourceBudget
from repro.cost import CostModel
from repro.mapping import MappingProblem, MoveStats, solve_exact, solve_hap
from repro.utils.rng import new_rng, spawn_rng
from repro.utils.tables import format_table
from repro.workloads import w1, w2
from tests.test_schedule import tiny_problem

#: Pricing-trace shape (quick mode shrinks the repeats, not the trace —
#: the ratio depends on the design mix).  The trace prices a joint
#: three-network workload (both W1 tasks plus W2's segmentation task) on
#: sampled 4-slot accelerators under a tight latency budget: deep-chain
#: instances where move pricing, not table building, dominates.
TRACE_DESIGNS = 8
TRACE_LATENCY = 400_000
MIN_SPEEDUP = 6.0
#: Timing repeats per path (min is reported) and attempts before the gate
#: fails: the identity check is deterministic, but wall-clock ratios can
#: flake on shared runners, so a scheduler hiccup gets more chances while
#: a real regression fails every attempt.
TIMING_REPEATS = 5
MAX_ATTEMPTS = 3


# ----------------------------------------------------------------------
# Ablation A: heuristic vs exact
# ----------------------------------------------------------------------
def _random_instance(rng, layers=9, slots=2):
    durations = rng.integers(5, 60, size=(layers, slots)).tolist()
    energies = rng.uniform(1, 25, size=(layers, slots)).tolist()
    half = layers // 2
    chains = [tuple(range(half)), tuple(range(half, layers))]
    return tiny_problem(durations, chains, energies)


def _gap_study():
    rows = []
    gaps = []
    for seed in range(12):
        rng = np.random.default_rng(seed)
        prob = _random_instance(rng)
        budget = int(prob.durations.min(axis=1).sum() * 1.4) + 1
        exact = solve_exact(prob, budget)
        heur = solve_hap(prob, budget)
        if not (exact.feasible and heur.feasible):
            continue
        gap = heur.energy_nj / exact.energy_nj - 1.0
        gaps.append(gap)
        rows.append([seed, f"{exact.energy_nj:.1f}",
                     f"{heur.energy_nj:.1f}", f"{gap:.1%}",
                     exact.explored])
    table = format_table(
        ["seed", "exact energy", "heuristic energy", "gap",
         "exact leaves"],
        rows, title="Ablation A: HAP heuristic vs exact")
    summary = (f"mean gap {np.mean(gaps):.2%}, worst {np.max(gaps):.2%} "
               f"over {len(gaps)} instances")
    return table + "\n" + summary, gaps


def test_hap_heuristic_quality(benchmark):
    report, gaps = run_once(benchmark, _gap_study)
    write_report("ablation_hap", report)
    assert gaps, "expected feasible instances"
    assert float(np.mean(gaps)) < 0.15, "heuristic should be near-optimal"


# ----------------------------------------------------------------------
# Uncached single-design pricing: fast path vs the PR-1 baseline
# ----------------------------------------------------------------------
def build_design_trace(designs: int, seed: int = 5):
    """Sampled joint-workload (networks, accelerator) designs, as a
    converging search would request them — each priced uncached in this
    benchmark.

    The workload joins both W1 tasks with W2's second task (three
    networks, ~55-60 layers per design) on 4-slot accelerators with at
    least three active sub-accelerators, so the feasibility hill-climb
    under ``TRACE_LATENCY`` does real work in every solve.
    """
    tasks = list(w1().tasks) + list(w2().tasks)[1:]
    alloc = AllocationSpace(
        num_slots=4,
        budget=ResourceBudget(max_pes=4096, max_bandwidth_gbps=64))
    rng = spawn_rng(new_rng(seed), 0)
    pairs = []
    for _ in range(designs):
        networks = tuple(
            task.space.decode(task.space.random_indices(rng))
            for task in tasks)
        accel = alloc.random_design(rng)
        while sum(s.is_active for s in accel.subaccs) < 3:
            accel = alloc.random_design(rng)
        pairs.append((networks, accel))
    return TRACE_LATENCY, pairs


def _price_fast(pairs, latency_constraint, stats=None):
    """Batched array kernel: union-primed ``build_many`` over the whole
    trace + the default (vectorised-bounds) solver."""
    cost_model = CostModel()
    problems = MappingProblem.build_many(pairs, cost_model)
    return [solve_hap(problem, latency_constraint, stats=stats)
            for problem in problems]


def _price_scalar(pairs, latency_constraint):
    """Scalar delta-resume kernel: same builds, ``batched=False``."""
    cost_model = CostModel()
    problems = MappingProblem.build_many(pairs, cost_model)
    return [solve_hap(problem, latency_constraint, batched=False)
            for problem in problems]


def _price_baseline(pairs, latency_constraint):
    """PR-1 pricing: scalar cost oracle + memoised full-replay moves,
    one fresh cost model per design (no cross-design sharing existed)."""
    return [solve_hap(
        MappingProblem.build(nets, accel, CostModel(), batched=False),
        latency_constraint, resume=False)
        for nets, accel in pairs]


def _best_of_interleaved(fns, repeats: int) -> list[float]:
    """Per-path minima over ``repeats`` rounds, each round timing every
    path back to back — runner load perturbs all paths alike instead of
    whichever path a sequential protocol happened to time during it."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            started = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - started)
    return best


def run_benchmark(quick: bool = False) -> dict:
    """Time the three pricing paths on the same trace; check that all
    return bit-identical results.

    Quick mode keeps the full design mix (the ratio depends on it) and
    only trims timing repeats.
    """
    designs = TRACE_DESIGNS
    repeats = 2 if quick else TIMING_REPEATS
    latency_constraint, pairs = build_design_trace(designs)

    stats = MoveStats()
    fast = _price_fast(pairs, latency_constraint, stats=stats)
    scalar = _price_scalar(pairs, latency_constraint)
    baseline = _price_baseline(pairs, latency_constraint)
    assert fast == scalar == baseline, (
        "kernel modes diverged — bit-identity violated")

    fast_s, scalar_s, baseline_s = _best_of_interleaved(
        [lambda: _price_fast(pairs, latency_constraint),
         lambda: _price_scalar(pairs, latency_constraint),
         lambda: _price_baseline(pairs, latency_constraint)],
        repeats)
    speedup = baseline_s / fast_s if fast_s > 0 else float("inf")
    return {
        "designs": designs,
        "latency_constraint": latency_constraint,
        "baseline_ms": baseline_s * 1e3,
        "scalar_ms": scalar_s * 1e3,
        "fast_ms": fast_s * 1e3,
        "speedup": speedup,
        "speedup_scalar": (baseline_s / scalar_s if scalar_s > 0
                           else float("inf")),
        "gate": MIN_SPEEDUP,
        "pricing": stats.as_dict(),
    }


def render(report: dict) -> str:
    pricing = report["pricing"]
    steps = pricing["steps_saved"] + pricing["steps_replayed"]
    saved = pricing["steps_saved"] / steps if steps else 0.0
    table = format_table(
        ["path", "wall-clock", "per design"],
        [
            ["PR-1 baseline (scalar build + full replays)",
             f"{report['baseline_ms']:.1f} ms",
             f"{report['baseline_ms'] / report['designs']:.2f} ms"],
            ["scalar delta-resume (certified bounds)",
             f"{report['scalar_ms']:.1f} ms",
             f"{report['scalar_ms'] / report['designs']:.2f} ms"],
            ["batched array kernel (vectorised bounds)",
             f"{report['fast_ms']:.1f} ms",
             f"{report['fast_ms'] / report['designs']:.2f} ms"],
        ],
        title=(f"Uncached single-design pricing "
               f"({report['designs']} designs, "
               f"LS={report['latency_constraint']})"))
    return (f"{table}\n"
            f"speedup: {report['speedup']:.1f}x "
            f"(gate: >= {report['gate']:.0f}x; scalar "
            f"{report['speedup_scalar']:.1f}x)   "
            f"moves: {pricing['moves_priced']} priced, "
            f"{pricing['pruned']} pruned, {pricing['resumed']} resumed "
            f"({saved:.1%} steps skipped)")


def run_gated(quick: bool = False) -> dict:
    """Best report over up to MAX_ATTEMPTS timing runs (early exit once
    the gate is met, so the usual cost is a single run)."""
    best = None
    for _ in range(MAX_ATTEMPTS):
        report = run_benchmark(quick=quick)
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= MIN_SPEEDUP:
            break
    return best


def test_uncached_pricing_speedup(benchmark=None):
    """Acceptance: >= 6x over the PR-1 baseline for the batched kernel,
    identical results (the identity assert lives inside run_benchmark)."""
    if benchmark is not None:
        report = run_once(benchmark, run_gated)
        write_report("bench_hap_pricing", render(report))
        write_json("hap", report)
    else:
        report = run_gated()
    assert report["speedup"] >= MIN_SPEEDUP, render(report)


def test_hap_heuristic_speed(benchmark, cost_model=None):
    """Wall-clock of one realistic HAP solve (the search's inner loop)."""
    from repro.arch import cifar10_resnet_space, nuclei_unet_space
    from repro.accel import Dataflow, HeterogeneousAccelerator, SubAccelerator

    cm = CostModel()
    cifar = cifar10_resnet_space()
    unet = nuclei_unet_space()
    nets = (cifar.decode(cifar.indices_of((8, 64, 2, 256, 2, 256, 2))),
            unet.decode((3, 1, 1, 1, 1, 0)))
    accel = HeterogeneousAccelerator((
        SubAccelerator(Dataflow.NVDLA, 2048, 32),
        SubAccelerator(Dataflow.SHIDIANNAO, 1024, 32)))
    problem = MappingProblem.build(nets, accel, cm)

    result = benchmark(lambda: solve_hap(problem, 800_000))
    assert result.feasible


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trace for CI smoke runs")
    args = parser.parse_args(argv)
    report = run_gated(quick=args.quick)
    print(render(report))
    write_json("hap", report)
    if report["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {report['speedup']:.2f}x below the "
              f"{MIN_SPEEDUP:.0f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
