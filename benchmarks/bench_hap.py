"""HAP benchmarks: heuristic quality and uncached single-design pricing.

Two studies share this file:

- **Ablation A** (``test_hap_heuristic_quality``): the paper replaces the
  optimal (ILP) mapper with the heuristic of Shao et al. [29] for speed;
  this quantifies the energy optimality gap on random small instances.
- **Pricing speedup** (``test_uncached_pricing_speedup`` / ``main``): the
  PR-2 acceptance gate.  It prices a trace of sampled designs end to end
  (``MappingProblem.build`` + ``solve_hap``) with a **fresh cost model
  per design** — no evaluation-cache hits, no cross-design memo carry-over
  — through

  - the PR-1 baseline (scalar per-pair cost oracle + memoised full-replay
    move pricing: ``build(batched=False)`` + ``solve_hap(resume=False)``),
  - the array-native fast path (vectorised batch cost tables +
    delta-resume move pricing with certified prune bounds — the default),

  asserts the two paths return **bit-identical** ``HAPResult``\\ s, and
  gates the wall-clock ratio at >= 3x.

Machine-readable record: ``benchmarks/results/BENCH_hap.json`` with keys
``speedup`` (gated), ``baseline_ms`` / ``fast_ms`` (per-trace wall-clock),
``designs``, ``latency_constraint``, ``gate``, and ``pricing`` (the fast
path's counters: ``moves_priced``, ``pruned``, ``resumed``,
``steps_saved``, ``steps_replayed``, ``full_replays``, ``memo_hits`` —
see :class:`repro.mapping.schedule.MoveStats`), so the perf trajectory is
tracked across PRs.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_hap.py [--quick]

or through pytest (``pytest benchmarks/bench_hap.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.conftest import run_once, write_json, write_report
from repro.accel import AllocationSpace
from repro.cost import CostModel
from repro.mapping import MappingProblem, MoveStats, solve_exact, solve_hap
from repro.utils.rng import new_rng, spawn_rng
from repro.utils.tables import format_table
from repro.workloads import w1
from tests.test_schedule import tiny_problem

#: Pricing-trace shape (quick mode shrinks it).
TRACE_DESIGNS = 12
MIN_SPEEDUP = 3.0
#: Timing repeats per path (min is reported) and attempts before the gate
#: fails: the identity check is deterministic, but wall-clock ratios can
#: flake on shared runners, so a scheduler hiccup gets more chances while
#: a real regression fails every attempt.
TIMING_REPEATS = 3
MAX_ATTEMPTS = 3


# ----------------------------------------------------------------------
# Ablation A: heuristic vs exact
# ----------------------------------------------------------------------
def _random_instance(rng, layers=9, slots=2):
    durations = rng.integers(5, 60, size=(layers, slots)).tolist()
    energies = rng.uniform(1, 25, size=(layers, slots)).tolist()
    half = layers // 2
    chains = [tuple(range(half)), tuple(range(half, layers))]
    return tiny_problem(durations, chains, energies)


def _gap_study():
    rows = []
    gaps = []
    for seed in range(12):
        rng = np.random.default_rng(seed)
        prob = _random_instance(rng)
        budget = int(prob.durations.min(axis=1).sum() * 1.4) + 1
        exact = solve_exact(prob, budget)
        heur = solve_hap(prob, budget)
        if not (exact.feasible and heur.feasible):
            continue
        gap = heur.energy_nj / exact.energy_nj - 1.0
        gaps.append(gap)
        rows.append([seed, f"{exact.energy_nj:.1f}",
                     f"{heur.energy_nj:.1f}", f"{gap:.1%}",
                     exact.explored])
    table = format_table(
        ["seed", "exact energy", "heuristic energy", "gap",
         "exact leaves"],
        rows, title="Ablation A: HAP heuristic vs exact")
    summary = (f"mean gap {np.mean(gaps):.2%}, worst {np.max(gaps):.2%} "
               f"over {len(gaps)} instances")
    return table + "\n" + summary, gaps


def test_hap_heuristic_quality(benchmark):
    report, gaps = run_once(benchmark, _gap_study)
    write_report("ablation_hap", report)
    assert gaps, "expected feasible instances"
    assert float(np.mean(gaps)) < 0.15, "heuristic should be near-optimal"


# ----------------------------------------------------------------------
# Uncached single-design pricing: fast path vs the PR-1 baseline
# ----------------------------------------------------------------------
def build_design_trace(designs: int, seed: int = 5):
    """Sampled (networks, accelerator) designs, as a converging search
    would request them — each priced uncached in this benchmark."""
    workload = w1()
    alloc = AllocationSpace()
    rng = spawn_rng(new_rng(seed), 0)
    pairs = []
    for _ in range(designs):
        networks = tuple(
            task.space.decode(task.space.random_indices(rng))
            for task in workload.tasks)
        pairs.append((networks, alloc.random_design(rng)))
    return workload.specs.latency_cycles, pairs


def _price_fast(pairs, latency_constraint, stats=None):
    """Array-native pricing: batched cost tables + delta-resume HAP."""
    return [solve_hap(MappingProblem.build(nets, accel, CostModel()),
                      latency_constraint, stats=stats)
            for nets, accel in pairs]


def _price_baseline(pairs, latency_constraint):
    """PR-1 pricing: scalar cost oracle + memoised full-replay moves."""
    return [solve_hap(
        MappingProblem.build(nets, accel, CostModel(), batched=False),
        latency_constraint, resume=False)
        for nets, accel in pairs]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_benchmark(quick: bool = False) -> dict:
    """Time both pricing paths on the same trace; check bit-identity.

    Quick mode keeps the full design mix (the ratio depends on it) and
    only trims timing repeats.
    """
    designs = TRACE_DESIGNS
    repeats = 2 if quick else TIMING_REPEATS
    latency_constraint, pairs = build_design_trace(designs)

    stats = MoveStats()
    fast = _price_fast(pairs, latency_constraint, stats=stats)
    baseline = _price_baseline(pairs, latency_constraint)
    assert fast == baseline, (
        "fast and baseline pricing diverged — bit-identity violated")

    fast_s = _best_of(lambda: _price_fast(pairs, latency_constraint),
                      repeats)
    baseline_s = _best_of(
        lambda: _price_baseline(pairs, latency_constraint), repeats)
    speedup = baseline_s / fast_s if fast_s > 0 else float("inf")
    return {
        "designs": designs,
        "latency_constraint": latency_constraint,
        "baseline_ms": baseline_s * 1e3,
        "fast_ms": fast_s * 1e3,
        "speedup": speedup,
        "gate": MIN_SPEEDUP,
        "pricing": stats.as_dict(),
    }


def render(report: dict) -> str:
    pricing = report["pricing"]
    steps = pricing["steps_saved"] + pricing["steps_replayed"]
    saved = pricing["steps_saved"] / steps if steps else 0.0
    table = format_table(
        ["path", "wall-clock", "per design"],
        [
            ["PR-1 baseline (scalar build + full replays)",
             f"{report['baseline_ms']:.1f} ms",
             f"{report['baseline_ms'] / report['designs']:.2f} ms"],
            ["array-native (batch tables + delta-resume)",
             f"{report['fast_ms']:.1f} ms",
             f"{report['fast_ms'] / report['designs']:.2f} ms"],
        ],
        title=(f"Uncached single-design pricing "
               f"({report['designs']} designs, "
               f"LS={report['latency_constraint']})"))
    return (f"{table}\n"
            f"speedup: {report['speedup']:.1f}x "
            f"(gate: >= {report['gate']:.0f}x)   "
            f"moves: {pricing['moves_priced']} priced, "
            f"{pricing['pruned']} pruned, {pricing['resumed']} resumed "
            f"({saved:.1%} steps skipped)")


def run_gated(quick: bool = False) -> dict:
    """Best report over up to MAX_ATTEMPTS timing runs (early exit once
    the gate is met, so the usual cost is a single run)."""
    best = None
    for _ in range(MAX_ATTEMPTS):
        report = run_benchmark(quick=quick)
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= MIN_SPEEDUP:
            break
    return best


def test_uncached_pricing_speedup(benchmark=None):
    """Acceptance: >= 3x over the PR-1 baseline, identical results (the
    identity assert lives inside run_benchmark)."""
    if benchmark is not None:
        report = run_once(benchmark, run_gated)
        write_report("bench_hap_pricing", render(report))
        write_json("hap", report)
    else:
        report = run_gated()
    assert report["speedup"] >= MIN_SPEEDUP, render(report)


def test_hap_heuristic_speed(benchmark, cost_model=None):
    """Wall-clock of one realistic HAP solve (the search's inner loop)."""
    from repro.arch import cifar10_resnet_space, nuclei_unet_space
    from repro.accel import Dataflow, HeterogeneousAccelerator, SubAccelerator

    cm = CostModel()
    cifar = cifar10_resnet_space()
    unet = nuclei_unet_space()
    nets = (cifar.decode(cifar.indices_of((8, 64, 2, 256, 2, 256, 2))),
            unet.decode((3, 1, 1, 1, 1, 0)))
    accel = HeterogeneousAccelerator((
        SubAccelerator(Dataflow.NVDLA, 2048, 32),
        SubAccelerator(Dataflow.SHIDIANNAO, 1024, 32)))
    problem = MappingProblem.build(nets, accel, cm)

    result = benchmark(lambda: solve_hap(problem, 800_000))
    assert result.feasible


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trace for CI smoke runs")
    args = parser.parse_args(argv)
    report = run_gated(quick=args.quick)
    print(render(report))
    write_json("hap", report)
    if report["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {report['speedup']:.2f}x below the "
              f"{MIN_SPEEDUP:.0f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
