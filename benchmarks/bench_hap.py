"""Ablation A: HAP heuristic vs the exact branch-and-bound reference.

The paper replaces the optimal (ILP) mapper with the heuristic of Shao
et al. [29] for speed; this ablation quantifies both sides on random
small instances: energy optimality gap and wall-clock ratio.
"""

import numpy as np

from benchmarks.conftest import run_once, write_report
from repro.mapping import solve_exact, solve_hap
from repro.utils.tables import format_table
from tests.test_schedule import tiny_problem


def _random_instance(rng, layers=9, slots=2):
    durations = rng.integers(5, 60, size=(layers, slots)).tolist()
    energies = rng.uniform(1, 25, size=(layers, slots)).tolist()
    half = layers // 2
    chains = [tuple(range(half)), tuple(range(half, layers))]
    return tiny_problem(durations, chains, energies)


def _gap_study():
    rows = []
    gaps = []
    for seed in range(12):
        rng = np.random.default_rng(seed)
        prob = _random_instance(rng)
        budget = int(prob.durations.min(axis=1).sum() * 1.4) + 1
        exact = solve_exact(prob, budget)
        heur = solve_hap(prob, budget)
        if not (exact.feasible and heur.feasible):
            continue
        gap = heur.energy_nj / exact.energy_nj - 1.0
        gaps.append(gap)
        rows.append([seed, f"{exact.energy_nj:.1f}",
                     f"{heur.energy_nj:.1f}", f"{gap:.1%}",
                     exact.explored])
    table = format_table(
        ["seed", "exact energy", "heuristic energy", "gap",
         "exact leaves"],
        rows, title="Ablation A: HAP heuristic vs exact")
    summary = (f"mean gap {np.mean(gaps):.2%}, worst {np.max(gaps):.2%} "
               f"over {len(gaps)} instances")
    return table + "\n" + summary, gaps


def test_hap_heuristic_quality(benchmark):
    report, gaps = run_once(benchmark, _gap_study)
    write_report("ablation_hap", report)
    assert gaps, "expected feasible instances"
    assert float(np.mean(gaps)) < 0.15, "heuristic should be near-optimal"


def test_hap_heuristic_speed(benchmark, cost_model=None):
    """Wall-clock of one realistic HAP solve (the search's inner loop)."""
    from repro.arch import cifar10_resnet_space, nuclei_unet_space
    from repro.accel import Dataflow, HeterogeneousAccelerator, SubAccelerator
    from repro.cost import CostModel
    from repro.mapping import MappingProblem

    cm = CostModel()
    cifar = cifar10_resnet_space()
    unet = nuclei_unet_space()
    nets = (cifar.decode(cifar.indices_of((8, 64, 2, 256, 2, 256, 2))),
            unet.decode((3, 1, 1, 1, 1, 0)))
    accel = HeterogeneousAccelerator((
        SubAccelerator(Dataflow.NVDLA, 2048, 32),
        SubAccelerator(Dataflow.SHIDIANNAO, 1024, 32)))
    problem = MappingProblem.build(nets, accel, cm)

    result = benchmark(lambda: solve_hap(problem, 800_000))
    assert result.feasible
