"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, writes the
rendered report to ``benchmarks/results/<name>.txt`` (so the output
survives pytest's capture) and records wall-clock via pytest-benchmark.

Scale: by default the searches run at a reduced-but-meaningful scale so
the whole suite finishes in minutes; set ``REPRO_BENCH_FULL=1`` for the
paper's full scale (beta=500 episodes, 10,000 Monte-Carlo runs).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Search scale used across benchmarks.
SCALE = {
    "episodes": 500 if FULL_SCALE else 200,
    "nas_episodes": 300 if FULL_SCALE else 200,
    "mc_runs": 10_000 if FULL_SCALE else 1_500,
    "design_sweep": 2_000 if FULL_SCALE else 400,
    "hw_steps": 10,
}


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(name: str, text: str) -> None:
    """Persist a rendered report and echo it for ``pytest -s`` runs."""
    from repro.core.serialization import durable_replace

    path = RESULTS_DIR / f"{name}.txt"
    durable_replace(path, (text + "\n").encode("utf-8"))
    print(f"\n[report written to {path}]\n{text}")


def write_json(name: str, payload: dict) -> None:
    """Persist a machine-readable benchmark record.

    Perf benchmarks write ``benchmarks/results/BENCH_<name>.json`` so the
    speedup trajectory (and the counters behind it) can be diffed across
    PRs; the schema is whatever the benchmark's ``report`` dict contains
    — see the module docstrings of ``bench_hap.py`` and
    ``bench_evalservice.py`` for their fields.
    """
    import json

    from repro.core.serialization import durable_replace

    path = RESULTS_DIR / f"BENCH_{name}.json"
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    durable_replace(path, blob.encode("utf-8"))
    print(f"[json written to {path}]")


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
