"""Benchmark regenerating the paper's search-cost claim (§V-A).

The paper: "NASAIC only takes around 3.5 GPU Hours to complete the
exploration for each workload, which mainly benefits from the early
pruning from optimizer selector".  This bench reconstructs the GPU-time
accounting for a W1 run and checks the two structural claims: pruning
plus memoisation avoid a large majority of trainings, and the
non-blocking overlap keeps wall clock at the GPU-time level rather than
the sum of both phases.
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.experiments import format_timing, run_timing
from repro.workloads import w1


def test_search_cost(benchmark):
    report = run_once(benchmark, lambda: run_timing(
        w1(), episodes=SCALE["episodes"], hw_steps=SCALE["hw_steps"],
        seed=77))
    write_report("timing_w1", format_timing(report))
    total_training_opportunities = report.episodes * 2  # two tasks
    executed = report.trainings_run
    # Pruning + memoisation must avoid most trainings.
    assert executed < 0.5 * total_training_opportunities
    # Overlap: wall clock far below the never-prune, never-overlap cost.
    assert report.overlapped_wall_seconds < report.naive_wall_seconds
    # And the search still succeeds.
    assert report.best_weighted is not None
