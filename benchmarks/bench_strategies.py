"""Strategy zoo benchmark: sample efficiency + store warm starts.

The surrogate-guided strategies (PR 9) are only worth their model-fit
cost if they need *fewer hardware evaluations* than blind sampling to
reach the same design quality.  This benchmark gates exactly that, on
the incumbent metric both families share — best feasible weighted
normalised accuracy over the explored trajectory:

- **Sample efficiency.**  A random-search baseline (the ``mc``
  strategy) runs ``N`` evaluations; ``bayesopt`` and ``ensemble`` get
  a budget of ``N/2`` evaluations and must still reach the baseline's
  final incumbent (best of 3 seeds, so one unlucky model fit does not
  flake the gate).
- **Warm start.**  The baseline's evaluations land in an
  :class:`~repro.core.store.EvalStore`; a store-warmed ``bayesopt``
  run must then improve on the cold run — reach the cold run's final
  incumbent in fewer evaluations, or end at a strictly better one
  (best of 3 seeds).  This is the Apollo-style transfer result: prior
  campaigns are training data, not just a cache.

Machine-readable record: ``benchmarks/results/BENCH_strategies.json``
with per-strategy evaluation counts, incumbents and gate verdicts.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_strategies.py [--quick]

or through pytest (``pytest benchmarks/bench_strategies.py``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.accel import AllocationSpace
from repro.core import EvalService, EvalStore, Evaluator
from repro.core.baselines import _MonteCarloStrategy
from repro.core.driver import SearchDriver
from repro.core.strategies import (
    BayesOptConfig,
    BayesOptSearch,
    EnsembleConfig,
    EnsembleSearch,
)
from repro.cost import CostModel
from repro.train import SurrogateTrainer, default_surrogate
from repro.workloads import w1

RANDOM_EVALS, RANDOM_QUICK = 240, 160
BATCH = 4
CANDIDATES = 160  # surrogate scoring pool per round
EFFICIENCY_RATIO = 0.5  # model budget as a fraction of random's
ATTEMPTS = 3
SEED = 31


def incumbent_trajectory(result) -> list[float]:
    """Best feasible weighted accuracy after each evaluation."""
    best = float("-inf")
    trajectory = []
    for solution in result.explored:
        if solution.feasible and solution.weighted_accuracy > best:
            best = solution.weighted_accuracy
        trajectory.append(best)
    return trajectory


def first_reach(trajectory: list[float], target: float) -> int | None:
    """1-based evaluation index where the incumbent reaches ``target``."""
    for i, value in enumerate(trajectory):
        if value >= target:
            return i + 1
    return None


def run_random(evals: int, seed: int, store: EvalStore | None = None):
    """The blind-sampling baseline (and, with ``store``, the seeder
    for the warm-start gate)."""
    workload = w1()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    evaluator = Evaluator(workload, CostModel(),
                          SurrogateTrainer(surrogate))
    strategy = _MonteCarloStrategy(workload, AllocationSpace(), evaluator,
                                   runs=evals, seed=seed, chunk=BATCH)
    with EvalService(evaluator, store=store) as service:
        started = time.perf_counter()
        result = SearchDriver(strategy, service).run()
        elapsed = time.perf_counter() - started
    return result, elapsed


def run_model(cls, config_cls, rounds: int, seed: int,
              warm_path: Path | None = None):
    """One surrogate-guided run, optionally warm-trained from a store."""
    kwargs = {}
    if warm_path is not None:
        kwargs["warm_store"] = EvalStore(warm_path, read_only=True)
    config = config_cls(rounds=rounds, batch=BATCH,
                        candidates=CANDIDATES,
                        seed=seed, calibrate_bounds=False)
    search = cls(w1(), config=config, **kwargs)
    if warm_path is not None:
        kwargs["warm_store"].close()
        assert search.warm_samples > 0, "store seeded nothing"
    started = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - started
    search.close()
    return result, elapsed


def efficiency_gate(name: str, cls, config_cls, target: float,
                    random_evals: int) -> dict:
    """Best of ``ATTEMPTS`` seeds: reach ``target`` in <= half the
    random baseline's evaluations."""
    budget = int(random_evals * EFFICIENCY_RATIO)
    rounds = budget // BATCH
    best: dict | None = None
    for attempt in range(1, ATTEMPTS + 1):
        result, elapsed = run_model(cls, config_cls, rounds,
                                    SEED + 7 * attempt)
        trajectory = incumbent_trajectory(result)
        reached = first_reach(trajectory, target)
        record = {
            "evals": len(trajectory),
            "budget": budget,
            "reached_at": reached,
            "incumbent": (max(trajectory) if trajectory else None),
            "seconds": elapsed,
        }
        def rank(r):  # fewer evaluations to target is better
            return r["reached_at"] if r["reached_at"] is not None \
                else float("inf")
        if best is None or rank(record) < rank(best):
            best = record
        if best["reached_at"] is not None:
            break
    best["attempts"] = attempt
    best["passed"] = best["reached_at"] is not None
    best["strategy"] = name
    return best


def warm_gate(store_path: Path, rounds: int) -> dict:
    """Best of ``ATTEMPTS`` seeds: the store-warmed run reaches the
    cold run's final incumbent in fewer evaluations, or beats it."""
    best: dict | None = None
    for attempt in range(1, ATTEMPTS + 1):
        seed = SEED + 11 * attempt
        cold_result, cold_s = run_model(BayesOptSearch, BayesOptConfig,
                                        rounds, seed)
        warm_result, warm_s = run_model(BayesOptSearch, BayesOptConfig,
                                        rounds, seed,
                                        warm_path=store_path)
        cold_traj = incumbent_trajectory(cold_result)
        warm_traj = incumbent_trajectory(warm_result)
        cold_final = max(cold_traj) if cold_traj else float("-inf")
        warm_final = max(warm_traj) if warm_traj else float("-inf")
        cold_at = first_reach(cold_traj, cold_final)
        warm_at = first_reach(warm_traj, cold_final)
        improved = ((warm_at is not None
                     and (cold_at is None or warm_at < cold_at))
                    or warm_final > cold_final)
        record = {
            "cold_incumbent": cold_final,
            "warm_incumbent": warm_final,
            "cold_reached_at": cold_at,
            "warm_reached_at": warm_at,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "passed": improved,
        }
        if best is None or (improved and not best["passed"]):
            best = record
        if best["passed"]:
            break
    best["attempts"] = attempt
    return best


def run_benchmark(quick: bool = False) -> dict:
    random_evals = RANDOM_QUICK if quick else RANDOM_EVALS
    with tempfile.TemporaryDirectory() as workdir:
        store_path = Path(workdir) / "seed.store"
        with EvalStore(store_path) as store:
            random_result, random_s = run_random(random_evals, SEED,
                                                 store)
        random_traj = incumbent_trajectory(random_result)
        assert random_traj and random_traj[-1] > float("-inf"), \
            "random baseline found no feasible design"
        target = random_traj[-1]
        report = {
            "random": {
                "evals": len(random_traj),
                "incumbent": target,
                "seconds": random_s,
            },
            "bayesopt": efficiency_gate(
                "bayesopt", BayesOptSearch, BayesOptConfig, target,
                random_evals),
            "ensemble": efficiency_gate(
                "ensemble", EnsembleSearch, EnsembleConfig, target,
                random_evals),
            "warm": warm_gate(
                store_path,
                rounds=int(random_evals * EFFICIENCY_RATIO) // BATCH),
        }
    report["passed"] = (report["bayesopt"]["passed"]
                        and report["ensemble"]["passed"]
                        and report["warm"]["passed"])
    return report


def render(report: dict) -> str:
    random = report["random"]
    lines = [
        "Strategy zoo sample efficiency (incumbent = best feasible "
        "weighted accuracy)",
        f"random baseline: incumbent {random['incumbent']:.4f} after "
        f"{random['evals']} evaluations ({random['seconds']:.1f} s)",
    ]
    for name in ("bayesopt", "ensemble"):
        r = report[name]
        reached = (f"evaluation {r['reached_at']}"
                   if r["reached_at"] is not None else "never")
        verdict = "ok" if r["passed"] else "FAIL"
        lines.append(
            f"{name}: reached the random incumbent at {reached} "
            f"(budget {r['budget']} = {EFFICIENCY_RATIO:.0%} of random; "
            f"best of {r['attempts']}) [{verdict}]")
    w = report["warm"]
    warm_at = (str(w["warm_reached_at"])
               if w["warm_reached_at"] is not None else "never")
    cold_at = (str(w["cold_reached_at"])
               if w["cold_reached_at"] is not None else "never")
    verdict = "ok" if w["passed"] else "FAIL"
    lines.append(
        f"warm start (bayesopt): cold incumbent "
        f"{w['cold_incumbent']:.4f} at evaluation {cold_at}; warm "
        f"reached it at {warm_at}, warm incumbent "
        f"{w['warm_incumbent']:.4f} (best of {w['attempts']}) "
        f"[{verdict}]")
    return "\n".join(lines)


def test_strategy_sample_efficiency(benchmark=None):
    """Acceptance: model-based strategies reach the random-search
    incumbent in <= 0.5x evaluations; store-warmed bayesopt improves
    on cold time-to-incumbent."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, lambda: run_benchmark(quick=True))
        write_report("bench_strategies", render(report))
        write_json("strategies", report)
    else:
        report = run_benchmark(quick=True)
    assert report["passed"], render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke tests")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("strategies", report)
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
