"""Fuzz-harness benchmark: differential verification throughput.

The fuzz harness (:mod:`repro.core.differential`) is only useful as a
routine gate if a meaningful corpus fits in CI time, so this benchmark
measures **scenarios per second** through the full oracle-pair registry
and gates on two facts:

- every check on the seeded corpus is green (the exactness contracts
  hold on generated workloads — the whole point of the harness), and
- throughput stays above :data:`MIN_CASES_PER_SECOND`, so a regression
  that makes fuzzing impractically slow (e.g. an accidentally quadratic
  check) fails loudly instead of silently shrinking CI coverage.

Machine-readable record: ``benchmarks/results/BENCH_fuzz.json`` with the
case/check counts, per-pair runs and throughput.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_fuzz.py [--quick]

or through pytest (``pytest benchmarks/bench_fuzz.py``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.differential import registered_pairs, run_fuzz

CASES, QUICK_CASES = 40, 10
SEED = 0
#: Generated scenarios are small by construction; anything below this
#: throughput means a check degraded badly (first numbers: ~15/s).
MIN_CASES_PER_SECOND = 1.0


def run_benchmark(quick: bool = False) -> dict:
    cases = QUICK_CASES if quick else CASES
    report = run_fuzz(cases=cases, seed=SEED)
    assert report.ok, "\n".join(
        f"{f.pair} (case seed {f.case_seed}): {f.detail}"
        for f in report.failures)
    return {
        "cases": report.cases,
        "checks": report.checks,
        "pairs": dict(report.pair_runs),
        "wall_s": report.wall_seconds,
        "cases_per_second": (report.cases / report.wall_seconds
                             if report.wall_seconds else float("inf")),
        "gate": f">= {MIN_CASES_PER_SECOND} cases/s, all checks green",
    }


def render(report: dict) -> str:
    lines = [
        "Differential fuzz harness benchmark",
        f"  scenarios:  {report['cases']} "
        f"({len(report['pairs'])} oracle pairs, "
        f"{report['checks']} checks, all green)",
        f"  wall:       {report['wall_s']:.2f}s "
        f"({report['cases_per_second']:.1f} cases/s; "
        f"gate {report['gate']})",
    ]
    return "\n".join(lines)


def test_fuzz_benchmark(benchmark=None):
    """Pytest entry: corpus green + throughput above the gate."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, run_benchmark)
        write_report("bench_fuzz", render(report))
        write_json("fuzz", report)
    else:
        report = run_benchmark()
    assert report["cases_per_second"] >= MIN_CASES_PER_SECOND, \
        render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke tests")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("fuzz", report)
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    if report["cases_per_second"] < MIN_CASES_PER_SECOND:
        print(f"FAIL: fuzz throughput "
              f"{report['cases_per_second']:.2f} cases/s below the "
              f"{MIN_CASES_PER_SECOND} cases/s gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
