"""Benchmark regenerating Fig. 1 (motivation study, single-task CIFAR-10).

Paper shape: every successive NAS->ASIC pairing violates the specs
(94.17% accuracy unreachable under them); the MC optimum (92.58%) beats
hardware-aware NAS on a fixed design (90.64%) and the closest-to-specs
heuristic (89.95%).
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.experiments import format_fig1, run_fig1


def test_fig1(benchmark):
    result = run_once(benchmark, lambda: run_fig1(
        nas_episodes=SCALE["nas_episodes"],
        hw_nas_episodes=SCALE["nas_episodes"],
        mc_runs=SCALE["mc_runs"],
        design_sweep_runs=SCALE["design_sweep"],
        seed=41))
    report = format_fig1(result)
    write_report("fig1", report)
    # Shape assertions from the paper's story.
    assert not result.nas_asic_any_feasible, \
        "successive NAS->ASIC must violate the specs"
    assert result.mc_optimal_point is not None
    assert result.nas_accuracy > result.mc_optimal_point.accuracies[0]
    if result.heuristic_point is not None:
        assert (result.mc_optimal_point.accuracies[0]
                >= result.heuristic_point.accuracies[0])
