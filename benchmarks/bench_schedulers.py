"""Ablation E: list-scheduling priority policies.

The HAP solver certifies feasibility through a deterministic list
scheduler; this ablation quantifies how much the priority rule matters
on realistic W1-style instances (two networks contending for two
sub-accelerators) — earliest-start vs LPT vs critical-path makespans.
"""

import numpy as np

from benchmarks.conftest import run_once, write_report
from repro.accel import Dataflow, HeterogeneousAccelerator, SubAccelerator
from repro.arch import cifar10_resnet_space, nuclei_unet_space
from repro.cost import CostModel
from repro.mapping import POLICIES, MappingProblem, list_schedule
from repro.utils.tables import format_table


def _study():
    cm = CostModel()
    cifar = cifar10_resnet_space()
    unet = nuclei_unet_space()
    nets = (cifar.decode(cifar.indices_of((8, 64, 2, 256, 2, 256, 2))),
            unet.decode((3, 1, 1, 1, 1, 0)))
    accel = HeterogeneousAccelerator((
        SubAccelerator(Dataflow.NVDLA, 2048, 32),
        SubAccelerator(Dataflow.SHIDIANNAO, 1024, 32)))
    problem = MappingProblem.build(nets, accel, cm)
    rng = np.random.default_rng(7)
    rows = []
    makespans = {policy: [] for policy in POLICIES}
    for trial in range(20):
        assignment = tuple(
            int(x) for x in rng.integers(0, problem.num_slots,
                                         size=problem.num_layers))
        for policy in POLICIES:
            sched = list_schedule(problem, assignment, policy=policy)
            makespans[policy].append(sched.makespan)
    for policy in POLICIES:
        values = np.array(makespans[policy], dtype=float)
        rows.append([policy, f"{values.mean():.4g}", f"{values.min():.4g}",
                     f"{values.max():.4g}"])
    table = format_table(
        ["policy", "mean makespan", "min", "max"],
        rows, title="Ablation E: scheduler policies on random W1-style "
                    "assignments (20 trials)")
    return table, makespans


def test_scheduler_policies(benchmark):
    table, makespans = run_once(benchmark, _study)
    write_report("ablation_schedulers", table)
    # All policies produce valid schedules with comparable makespans;
    # no policy may be catastrophically worse (> 2x) on average.
    means = {p: float(np.mean(v)) for p, v in makespans.items()}
    best = min(means.values())
    for policy, mean in means.items():
        assert mean <= 2.0 * best, policy
