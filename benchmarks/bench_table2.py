"""Benchmark regenerating Table II (accelerator configurations on W3).

Paper shape: NAS with maximum hardware reaches the top accuracy but
violates the specs; Single/Homo/Hetero all meet them; the heterogeneous
NASAIC solution's best network beats both the homogeneous and the
single-accelerator accuracies (93.23% > 92.00% > 91.45% in the paper).
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.core import NASAICConfig
from repro.experiments import format_table2, run_table2
from repro.workloads import w3


def test_table2(benchmark):
    result = run_once(benchmark, lambda: run_table2(
        w3(),
        nas_episodes=SCALE["nas_episodes"],
        seed=53,
        nasaic_config=NASAICConfig(
            episodes=SCALE["episodes"], hw_steps=SCALE["hw_steps"],
            seed=53)))
    write_report("table2", format_table2(result))
    nas = result.row("NAS")
    single = result.row("Single Acc.")
    homo = result.row("Homo. Acc.")
    hetero = result.row("Hetero. Acc. (NASAIC)")
    assert not nas.meets_specs, "NAS row must violate the specs"
    for row in (single, homo, hetero):
        assert row.meets_specs, f"{row.approach} must meet the specs"
    # Accuracy ladder: NAS tops everything; the heterogeneous pair's
    # best network is competitive with the single-accelerator result
    # (paper: 93.23% vs 91.45%; in our calibration the single
    # configuration is not latency-bound, so the ladder flattens — see
    # EXPERIMENTS.md — and a 1-point tolerance absorbs REINFORCE seed
    # variance at reduced scale).
    assert nas.accuracies[0] >= max(hetero.accuracies) - 0.5
    assert max(hetero.accuracies) > single.accuracies[0] - 1.0
