"""Ablation C: the optimizer selector's early pruning (§IV-②).

The paper credits its 3.5-GPU-hour search time to pruning: episodes
whose ``1 + phi`` hardware explorations find no feasible design skip the
(dominant) training step.  This ablation runs NASAIC on W1 with pruning
on vs off and reports trainings executed, simulated GPU time, and the
quality of the best feasible solution — pruning should save trainings
without giving up quality.
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.core import NASAIC, NASAICConfig
from repro.utils.tables import format_table
from repro.workloads import w1


def _run(prune: bool):
    search = NASAIC(w1(), config=NASAICConfig(
        episodes=SCALE["episodes"] // 2, hw_steps=SCALE["hw_steps"],
        seed=59, prune_infeasible=prune))
    result = search.run()
    return search, result


def _study():
    rows = []
    outcomes = {}
    for prune in (False, True):
        search, result = _run(prune)
        gpu_h = search.trainer.simulated_gpu_seconds / 3600.0
        feasible = len(result.feasible_solutions)
        best = (result.best.weighted_accuracy
                if result.best is not None else float("nan"))
        outcomes[prune] = (result, gpu_h)
        rows.append([
            "on" if prune else "off", len(result.episodes),
            result.trainings_run, result.trainings_skipped,
            f"{gpu_h:.2f}", feasible, f"{best:.4f}"])
    table = format_table(
        ["pruning", "episodes", "trainings run", "trainings skipped",
         "simulated GPU-hours", "feasible solutions",
         "best weighted acc"],
        rows, title="Ablation C: early pruning (optimizer selector)")
    return table, outcomes


def test_early_pruning(benchmark):
    table, outcomes = run_once(benchmark, _study)
    write_report("ablation_pruning", table)
    result_off, gpu_off = outcomes[False]
    result_on, gpu_on = outcomes[True]
    assert result_on.best is not None
    assert result_off.best is not None
    # Pruning must actually skip trainings and hence save GPU time.
    assert result_on.trainings_skipped > 0
    assert gpu_on <= gpu_off
    # Without losing solution quality (allow small run-to-run noise).
    assert (result_on.best.weighted_accuracy
            >= result_off.best.weighted_accuracy - 0.03)
    # With pruning every explored solution meets the specs; without, the
    # explored set may contain violating solutions.
    assert all(s.feasible for s in result_on.explored)
