"""Ablation D: optimiser comparison — RL (NASAIC) vs EA vs Monte-Carlo.

The paper builds NASAIC on reinforcement learning but notes the reward
formulation admits other optimisers (evolutionary algorithms, §IV).
This ablation compares the three at a matched *training-evaluation*
budget on W3: best feasible weighted accuracy, number of feasible
solutions and trainings consumed.
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.core import (
    NASAIC,
    NASAICConfig,
    EvolutionConfig,
    EvolutionarySearch,
    monte_carlo_search,
)
from repro.utils.tables import format_table
from repro.workloads import w3


def _study():
    episodes = SCALE["episodes"]
    rows = []
    outcomes = {}

    rl = NASAIC(w3(), config=NASAICConfig(
        episodes=episodes, hw_steps=SCALE["hw_steps"], seed=61)).run()
    outcomes["RL (NASAIC)"] = rl

    # EA budget: population * generations ~= episodes evaluations.
    population = 20
    generations = max(2, episodes // population)
    ea = EvolutionarySearch(w3(), config=EvolutionConfig(
        population=population, generations=generations, elite=2,
        seed=61)).run()
    outcomes["EA"] = ea

    mc = monte_carlo_search(w3(), runs=episodes, seed=61)
    outcomes["MC"] = mc

    for name, result in outcomes.items():
        best = (f"{result.best.weighted_accuracy:.4f}"
                if result.best is not None else "none")
        rows.append([
            name, len(result.explored),
            len(result.feasible_solutions), result.trainings_run, best])
    table = format_table(
        ["optimiser", "solutions evaluated", "feasible", "trainings",
         "best weighted acc"],
        rows, title="Ablation D: optimiser comparison on W3 "
                    f"(~{episodes} evaluations each)")
    return table, outcomes


def test_optimizer_comparison(benchmark):
    table, outcomes = run_once(benchmark, _study)
    write_report("ablation_optimizers", table)
    for name, result in outcomes.items():
        assert result.best is not None, f"{name} found nothing feasible"
    rl = outcomes["RL (NASAIC)"].best.weighted_accuracy
    mc = outcomes["MC"].best.weighted_accuracy
    ea = outcomes["EA"].best.weighted_accuracy
    # All three optimise the same reward; at matched budgets they should
    # land in the same quality band (within ~3 accuracy points).
    assert abs(rl - mc) < 0.03
    assert abs(ea - mc) < 0.03
