"""Serving benchmark: multi-client pricing through one shared daemon.

The persistent store made repeat pricing free across *sequential*
sessions, but its single-writer contract (enforced by the store's
advisory lock) means concurrent searches cannot share it directly —
each concurrent client owns a private cache and recomputes every
distinct design for itself.  The pricing daemon (``repro serve``)
closes that gap: one hosted evaluation tier (LRU + store + cost memo)
behind a Unix socket, cross-client request coalescing, and a single
writer task keeping all store appends serialized.

The benchmark prices a repeat-heavy trace — K concurrent clients each
run S sessions over the same pool of D distinct designs, so the fleet
requests every design K x S times.  The evaluation context is
deliberately heavyweight (three network chains from two workloads
under a tight latency constraint, the regime the co-exploration paper
actually searches in), so a miss costs real HAP solver work — the
thing a shared cache amortises and ``--workers`` parallelises.  Three
harnesses differ only in sharing:

- **private** (the status quo): K threads, each session with its own
  fresh in-process :class:`~repro.core.evalservice.EvalService`.
  Concurrent runs cannot share the persistent store (its writer lock
  enforces exactly that), so every session starts cold and the fleet
  computes K x S x D misses.
- **served**: the same K threads and sessions as
  :class:`~repro.core.client.RemoteEvalService` clients of one cold
  daemon; the fleet computes each design once (D computations —
  coalescing and the shared LRU absorb everything else, across
  clients and sessions alike).
- **served + workers**: the served harness against a fresh cold
  daemon started with ``--workers`` — misses price on a process pool
  instead of the single compute thread, while the in-flight map still
  dedups before dispatch (the single-compute guarantee is checked on
  this datapoint too).

Gates (asserted on every attempt):

- **bit-identity** — every served evaluation equals the in-process
  reference, for every client and request, on both daemons;
- **single-compute** — each daemon's ``computed`` counter equals the
  number of distinct designs (cross-client coalescing worked, with
  and without workers);
- **>= 2x aggregate throughput** — both served fleets finish the
  trace at least ``SPEEDUP_GATE`` times faster than the private-cache
  fleet (best of ``ATTEMPTS``, so scheduler hiccups on shared runners
  do not flake).

Machine-readable record: ``benchmarks/results/BENCH_serve.json``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_serve.py [--quick]

or through pytest (``pytest benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.accel import AllocationSpace, ResourceBudget
from repro.core import EvalService, Evaluator, RemoteEvalService
from repro.core.server import serve_in_thread
from repro.cost import CostModel
from repro.utils.rng import new_rng
from repro.workloads import w1, w2
from repro.workloads.workload import DesignSpecs, PenaltyBounds

SEED = 17
CLIENTS = 4
SESSIONS = 4  # runs per client; private caches restart cold each one
DISTINCT, DISTINCT_QUICK = 80, 30
SUBMIT_BATCH = 16  # designs per evaluate_many call, like driver rounds
SPEEDUP_GATE = 2.0
ATTEMPTS = 3
WORKERS = max(2, min(4, os.cpu_count() or 2))


def bench_workload():
    """A heavyweight evaluation context: both W1 tasks plus W2's
    second task (three network chains per design) under a tight
    latency budget, so every miss runs a real feasibility hill-climb
    instead of an already-feasible no-op solve."""
    base, other = w1(), w2()
    raw = list(base.tasks) + [
        dataclasses.replace(task, name=task.name + "-b")
        for task in other.tasks[1:]]
    tasks = tuple(dataclasses.replace(task, weight=1.0 / len(raw))
                  for task in raw)
    specs = DesignSpecs(latency_cycles=600_000, energy_nj=3.0e9,
                        area_um2=6.0e9)
    return dataclasses.replace(base, name="w1w2-tight", tasks=tasks,
                               specs=specs,
                               bounds=PenaltyBounds.from_specs(specs))


def sample_pool(workload, n: int) -> list:
    """``n`` distinct seeded (networks, accelerator) designs; at least
    three active sub-accelerators each, so the scheduler has real slot
    choices to price."""
    allocation = AllocationSpace(
        num_slots=4,
        budget=ResourceBudget(max_pes=4096, max_bandwidth_gbps=64))
    rng = new_rng(SEED)
    pool = []
    for _ in range(n):
        nets = tuple(task.space.decode(task.space.random_indices(rng))
                     for task in workload.tasks)
        accel = allocation.random_design(rng)
        while sum(s.is_active for s in accel.subaccs) < 3:
            accel = allocation.random_design(rng)
        pool.append((nets, accel))
    return pool


def client_trace(pool: list, client: int) -> list:
    """One client's session trace: the full pool, client-shuffled, so
    every request repeats across the fleet (and across sessions)."""
    rng = new_rng(SEED + 100 + client)
    return [pool[i] for i in rng.permutation(len(pool))]


def price_in_batches(service, trace: list) -> list:
    evaluations = []
    for start in range(0, len(trace), SUBMIT_BATCH):
        evaluations.extend(
            service.evaluate_many(trace[start:start + SUBMIT_BATCH]))
    return evaluations


def run_fleet(make_service, traces: list[list]) -> tuple[list, float]:
    """Price every trace on its own thread, ``SESSIONS`` times each
    with a fresh service; returns (per-client per-session evaluations,
    wall-clock).  ``make_service(client)`` builds that client's
    pricing tier — the only thing the two harnesses vary."""
    results: list = [None] * len(traces)
    errors: list = []
    barrier = threading.Barrier(len(traces) + 1)

    def run(slot: int) -> None:
        try:
            barrier.wait()
            sessions = []
            for _ in range(SESSIONS):
                service = make_service(slot)
                try:
                    sessions.append(
                        price_in_batches(service, traces[slot]))
                finally:
                    service.close()
            results[slot] = sessions
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(slot,))
               for slot in range(len(traces))]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return results, elapsed


def run_attempt(workload, pool: list, traces: list[list],
                want: dict) -> dict:
    """One private-vs-served comparison; gates asserted inline."""
    params = CostModel().params

    def private_service(_client: int) -> EvalService:
        return EvalService(Evaluator(workload, CostModel(),
                                     trainer=None, rho=10.0))

    private_results, private_s = run_fleet(private_service, traces)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with serve_in_thread(
                store_path=Path(tmp) / "store.bin") as server:

            def served_service(_client: int) -> RemoteEvalService:
                return RemoteEvalService(server.socket_path, workload,
                                         params, 10.0)

            served_results, served_s = run_fleet(served_service, traces)
            computed = server.counters["computed"]
            coalesced = server.counters["coalesced"]

    # Same fleet against a fresh cold daemon with a worker pool:
    # misses price concurrently, coalescing must still dedup them.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with serve_in_thread(store_path=Path(tmp) / "store.bin",
                             workers=WORKERS) as server:

            def workers_service(_client: int) -> RemoteEvalService:
                return RemoteEvalService(server.socket_path, workload,
                                         params, 10.0)

            workers_results, workers_s = run_fleet(workers_service,
                                                   traces)
            computed_workers = server.counters["computed"]
            computed_parallel = server.counters["computed_parallel"]

    requests = SESSIONS * sum(len(trace) for trace in traces)
    for results, label in ((private_results, "private"),
                           (served_results, "served"),
                           (workers_results, "served-workers")):
        for client, (trace, sessions) in enumerate(
                zip(traces, results)):
            for session, evaluations in enumerate(sessions):
                for index, (pair, evaluation) in enumerate(
                        zip(trace, evaluations)):
                    assert evaluation == want[id(pair)], (
                        f"{label} client {client} session {session} "
                        f"request {index} is not bit-identical to "
                        "the in-process reference")
    assert computed == len(pool), (
        f"daemon computed {computed} misses for {len(pool)} distinct "
        "designs — cross-client coalescing failed to deduplicate")
    assert computed_workers == len(pool), (
        f"workers daemon computed {computed_workers} misses for "
        f"{len(pool)} distinct designs — coalescing must dedup "
        "before pool dispatch")
    return {
        "clients": len(traces),
        "sessions": SESSIONS,
        "distinct_designs": len(pool),
        "requests": requests,
        "private_s": private_s,
        "served_s": served_s,
        "served_workers_s": workers_s,
        "speedup": private_s / served_s if served_s > 0 else float("inf"),
        "speedup_workers": (private_s / workers_s
                            if workers_s > 0 else float("inf")),
        "private_throughput_rps": requests / private_s,
        "served_throughput_rps": requests / served_s,
        "served_workers_throughput_rps": requests / workers_s,
        "workers": WORKERS,
        "computed": computed,
        "coalesced": coalesced,
        "computed_workers": computed_workers,
        "computed_parallel": computed_parallel,
    }


def run_benchmark(quick: bool = False) -> dict:
    workload = bench_workload()
    pool = sample_pool(workload, DISTINCT_QUICK if quick else DISTINCT)
    traces = [client_trace(pool, client) for client in range(CLIENTS)]
    reference = Evaluator(workload, CostModel(), trainer=None, rho=10.0)
    want = {id(pair): reference.evaluate_hardware(*pair)
            for pair in pool}
    best: dict | None = None
    for attempt in range(ATTEMPTS):
        report = run_attempt(workload, pool, traces, want)
        score = min(report["speedup"], report["speedup_workers"])
        if best is None or score > min(best["speedup"],
                                       best["speedup_workers"]):
            best = report
        if min(best["speedup"], best["speedup_workers"]) >= SPEEDUP_GATE:
            break
    best["attempts"] = attempt + 1
    return best


def render(report: dict) -> str:
    return (
        "Served pricing: "
        f"{report['clients']} concurrent clients x "
        f"{report['sessions']} sessions x "
        f"{report['distinct_designs']} distinct designs "
        f"({report['requests']} requests, private caches restart "
        "cold each session)\n"
        f"private caches: {report['private_s'] * 1e3:.0f} ms "
        f"({report['private_throughput_rps']:.0f} req/s) -> daemon: "
        f"{report['served_s'] * 1e3:.0f} ms "
        f"({report['served_throughput_rps']:.0f} req/s); "
        f"{report['speedup']:.2f}x aggregate (gate >= "
        f"{SPEEDUP_GATE:.1f}x, best of {report['attempts']})\n"
        f"daemon --workers {report['workers']}: "
        f"{report['served_workers_s'] * 1e3:.0f} ms "
        f"({report['served_workers_throughput_rps']:.0f} req/s); "
        f"{report['speedup_workers']:.2f}x aggregate, "
        f"{report['computed_parallel']} misses priced on workers\n"
        f"daemon computed {report['computed']} misses "
        f"({report['coalesced']} coalesced mid-flight; "
        f"{report['computed_workers']} with workers — still one "
        "compute per distinct design); every evaluation "
        "bit-identical to in-process")


def to_json(report: dict) -> dict:
    """Flatten into the BENCH_serve.json schema."""
    return {
        **{key: report[key] for key in (
            "clients", "sessions", "distinct_designs", "requests",
            "computed", "coalesced", "speedup", "attempts",
            "workers", "speedup_workers", "computed_workers",
            "computed_parallel")},
        "private_ms": report["private_s"] * 1e3,
        "served_ms": report["served_s"] * 1e3,
        "served_workers_ms": report["served_workers_s"] * 1e3,
        "private_throughput_rps": report["private_throughput_rps"],
        "served_throughput_rps": report["served_throughput_rps"],
        "served_workers_throughput_rps":
            report["served_workers_throughput_rps"],
        "gate": (f"served fleets (serial and --workers) >= "
                 f"{SPEEDUP_GATE}x private fleet, computed == "
                 "distinct designs on both daemons, evaluations "
                 "bit-identical"),
    }


def test_served_multi_client(benchmark=None):
    """Acceptance: bit-identity and single-compute (asserted inside
    run_benchmark), both served fleets >= 2x private-cache fleet."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, run_benchmark)
        write_report("bench_serve", render(report))
        write_json("serve", to_json(report))
    else:
        report = run_benchmark()
    assert report["speedup"] >= SPEEDUP_GATE, render(report)
    assert report["speedup_workers"] >= SPEEDUP_GATE, render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke tests")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("serve", to_json(report))
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    worst = min(report["speedup"], report["speedup_workers"])
    if worst < SPEEDUP_GATE:
        print(f"FAIL: served aggregate speedup {worst:.2f}x "
              f"(serial {report['speedup']:.2f}x, --workers "
              f"{report['speedup_workers']:.2f}x) below the "
              f"{SPEEDUP_GATE:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
