"""Ablation B: cost-model throughput and the dataflow-affinity matrix.

The search's feasibility hinges on the §II Challenge-2 affinity
structure: NVDLA-style favours channel-heavy/low-resolution layers,
ShiDianNao-style the opposite, row-stationary in between.  This bench
prints the full network x dataflow latency matrix and measures the
oracle's throughput (it is called ~10^5 times per search).
"""

from benchmarks.conftest import run_once, write_report
from repro.accel import Dataflow, SubAccelerator
from repro.arch import cifar10_resnet_space, nuclei_unet_space, stl10_resnet_space
from repro.cost import CostModel
from repro.utils.tables import format_table


def _affinity_matrix():
    cm = CostModel()
    cifar = cifar10_resnet_space()
    stl = stl10_resnet_space()
    unet = nuclei_unet_space()
    networks = {
        "resnet9/cifar10 (max)": cifar.decode(cifar.largest_indices()),
        "resnet9/stl10 (mid)": stl.decode(
            stl.indices_of((32, 128, 1, 256, 1, 256, 1, 512, 1, 512, 1))),
        "unet/nuclei (mid)": unet.decode((3, 1, 1, 1, 1, 0)),
    }
    rows = []
    latencies = {}
    for label, net in networks.items():
        lats = {}
        for df in Dataflow:
            sub = SubAccelerator(df, 1024, 32)
            lat, _ = cm.network_cost_on(net, sub)
            lats[df.value] = lat
        latencies[label] = lats
        best = min(lats, key=lats.get)
        rows.append([label] + [f"{lats[d]:.3g}"
                               for d in ("shi", "dla", "rs")] + [best])
    table = format_table(
        ["network", "shi latency", "dla latency", "rs latency", "winner"],
        rows, title="Ablation B: dataflow affinity (1024 PEs, 32 GB/s)")
    return table, latencies


def test_dataflow_affinity(benchmark):
    (table, latencies) = run_once(benchmark, _affinity_matrix)
    write_report("ablation_affinity", table)
    # The paper's §II claim is about shi vs dla: "NVDLA style works
    # better for ResNets, while Shidiannao works better for U-Nets".
    resnet = latencies["resnet9/cifar10 (max)"]
    unet = latencies["unet/nuclei (mid)"]
    assert resnet["dla"] < resnet["shi"]
    assert unet["shi"] < unet["dla"]


def test_costmodel_throughput(benchmark):
    """Layer-cost oracle throughput on a cold cache."""
    cifar = cifar10_resnet_space()
    net = cifar.decode(cifar.largest_indices())
    subs = [SubAccelerator(df, pes, 32)
            for df in Dataflow for pes in (256, 1024, 4096)]

    def evaluate_all():
        cm = CostModel()  # cold cache each round
        total = 0
        for layer in net.layers:
            for sub in subs:
                total += cm.layer_cost(layer, sub).latency_cycles
        return total

    assert benchmark(evaluate_all) > 0


def test_costmodel_cache_effectiveness(benchmark):
    """Warm-cache lookups are what the search actually pays for."""
    cifar = cifar10_resnet_space()
    net = cifar.decode(cifar.largest_indices())
    cm = CostModel()
    sub = SubAccelerator(Dataflow.NVDLA, 1024, 32)
    for layer in net.layers:  # warm
        cm.layer_cost(layer, sub)

    def lookup_all():
        return sum(cm.layer_cost(layer, sub).latency_cycles
                   for layer in net.layers)

    assert benchmark(lookup_all) > 0
