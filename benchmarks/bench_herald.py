"""Ablation F: HERALD-style allocator vs NASAIC's learned allocation.

HERALD [22] (the paper's heterogeneous-accelerator foundation) splits
the PE/bandwidth budget proportionally to each network's demand.  For
*fixed* networks that heuristic is strong; the co-exploration's edge is
that it can also reshape the networks.  This ablation fixes NASAIC's
winning W1 architectures, lets HERALD allocate for them, and compares
against the design NASAIC found jointly.
"""

from benchmarks.conftest import SCALE, run_once, write_report
from repro.core import NASAIC, NASAICConfig
from repro.core.herald import herald_allocate
from repro.utils.tables import format_table
from repro.workloads import w1


def _study():
    workload = w1()
    search = NASAIC(workload, config=NASAICConfig(
        episodes=SCALE["episodes"], hw_steps=SCALE["hw_steps"], seed=67))
    result = search.run()
    assert result.best is not None, "NASAIC must find a feasible W1 pair"
    best = result.best
    herald = herald_allocate(best.networks, workload,
                             cost_model=search.cost_model)
    rows = [
        ["NASAIC (joint)", best.accelerator.describe(),
         f"{best.latency_cycles:.3g}", f"{best.energy_nj:.3g}",
         f"{best.area_um2:.3g}",
         "meets" if best.feasible else "VIOLATES"],
        ["HERALD (for NASAIC nets)", herald.accelerator.describe(),
         f"{herald.latency_cycles:.3g}", f"{herald.energy_nj:.3g}",
         f"{herald.area_um2:.3g}",
         "meets" if herald.feasible else "VIOLATES"],
    ]
    table = format_table(
        ["allocator", "design", "L/cycles", "E/nJ", "A/um2", "specs"],
        rows, title="Ablation F: learned vs demand-proportional "
                    "allocation (W1, NASAIC's networks)")
    return table, best, herald


def test_herald_vs_nasaic(benchmark):
    table, best, herald = run_once(benchmark, _study)
    write_report("ablation_herald", table)
    # The proportional heuristic should find a feasible design for
    # networks that NASAIC already proved feasible.
    assert herald.feasible
    # And NASAIC's design must at least match HERALD's feasibility.
    assert best.feasible
