"""Store benchmark: cross-run warm start from the persistent tier.

PRs 1-3 made repeat pricing free *within* a process; every new process
still started cold.  The persistent evaluation store
(:mod:`repro.core.store`) closes that gap: priced designs are appended
durably, and any later run answers repeat requests from disk instead of
re-running the cost model + HAP solve.

Two cold/warm session pairs run against one store file each, simulating
a second session over each search family:

- **NASAIC** (controller + training path + hardware): gates
  *correctness* — the warm run's search outcome is **bit-identical** to
  the cold run's (trajectory, explored set; everything except the
  which-tier-answered accounting), >= 90% of its requests are served
  without computing, and ``store_hits > 0``.  Wall-clock is reported,
  not gated: the controller/training work the store cannot remove is
  identical in both sessions and bounds the ratio on small runs.
- **Monte-Carlo** (pure hardware pricing, the repeat-heavy shape of
  budget sweeps and table regenerations): gates *speed* — the warm
  session beats the cold one by >= 2x (best of 3 attempts, so scheduler
  hiccups on shared runners do not flake), plus the same bit-identity
  and served-rate checks.

Machine-readable record: ``benchmarks/results/BENCH_store.json`` with
per-family ``cold_ms`` / ``warm_ms`` / ``speedup`` / ``served_rate``
blocks and the gate description.

**Scale mode** (``--scale``) gates the offset-index tier instead: a
synthetic corpus ~10^3 entries and one ~10^6 entries (``--quick``
shrinks the large corpus), asserting that reopening the big store and
answering warm lookups from it stay within 2x of the small-store
numbers (with absolute noise floors) — i.e. open cost is the index
stamp, not an O(n) unpickle, and lookups are index seeks, not scans.
The same run compacts the large store and re-probes every sampled
address for bit-identical answers, live and after a cold reopen.
Record: ``benchmarks/results/BENCH_store_scale.json``.

Run standalone (CI smoke uses ``--quick`` for both modes)::

    PYTHONPATH=src:. python benchmarks/bench_store.py [--quick] [--scale]

or through pytest (``pytest benchmarks/bench_store.py``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.core import NASAIC, NASAICConfig, EvalStore
from repro.core.serialization import result_to_dict
from repro.workloads import w1

NASAIC_SCALE = dict(episodes=6, hw_steps=6)
NASAIC_QUICK = dict(episodes=3, hw_steps=4)
MC_RUNS, MC_QUICK_RUNS = 300, 80
SEED = 9
SPEEDUP_GATE = 2.0
SERVED_GATE = 0.9
ATTEMPTS = 3

SCALE_BASELINE = 1_000
SCALE_TARGET = 1_000_000
SCALE_QUICK_TARGET = 30_000
SCALE_RATIO_GATE = 2.0
# Absolute noise floors: at these magnitudes the 2x ratio would gate
# scheduler jitter, not algorithmic growth (an O(n) open of 10^6
# records costs seconds, far above 50 ms).
SCALE_OPEN_FLOOR_S = 0.05
SCALE_LOOKUP_FLOOR_S = 200e-6
SCALE_BATCH = 10_000
SCALE_PROBES = 64
SCALE_OPEN_REPS = 5
SCALE_LOOKUP_REPS = 400


def outcome_shape(result) -> dict:
    """Search outcome facts that must not depend on which tier answered
    (the warm start turns misses into store hits by design)."""
    payload = result_to_dict(result)
    for key in ("cache_hits", "cache_misses", "eval_seconds", "pricing"):
        payload.pop(key)
    return payload


def timed_nasaic(store: EvalStore, config: NASAICConfig):
    search = NASAIC(w1(), config=config, store=store)
    started = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - started
    search.close()
    return result, search.evalservice.stats.snapshot(), elapsed


def timed_mc(store: EvalStore, runs: int):
    from repro.accel import AllocationSpace
    from repro.core import EvalService, Evaluator
    from repro.core.baselines import _MonteCarloStrategy
    from repro.core.driver import SearchDriver
    from repro.cost import CostModel
    from repro.train import SurrogateTrainer, default_surrogate

    workload = w1()
    surrogate = default_surrogate([t.space for t in workload.tasks])
    evaluator = Evaluator(workload, CostModel(),
                          SurrogateTrainer(surrogate))
    strategy = _MonteCarloStrategy(workload, AllocationSpace(), evaluator,
                                   runs=runs, seed=SEED + 8, chunk=32)
    with EvalService(evaluator, store=store) as service:
        started = time.perf_counter()
        result = SearchDriver(strategy, service).run()
        elapsed = time.perf_counter() - started
        return result, service.stats.snapshot(), elapsed


def cold_warm(runner, workdir: Path, name: str) -> dict:
    """One cold/warm session pair over a fresh store file."""
    store_path = workdir / f"{name}.store"
    with EvalStore(store_path) as store:
        cold_result, cold_stats, cold_s = runner(store)
    assert cold_stats.store_hits == 0, "a fresh store cannot answer"
    with EvalStore(store_path) as store:  # "new session": reopen
        warm_result, warm_stats, warm_s = runner(store)
        store_entries = len(store)
    # Bit-identity: warm-starting may not change a single outcome.
    assert outcome_shape(warm_result) == outcome_shape(cold_result), \
        f"warm-started {name} run diverged from the cold run"
    served_rate = (1.0 - warm_stats.misses / warm_stats.requests
                   if warm_stats.requests else 0.0)
    assert warm_stats.store_hits > 0, f"no store reuse in {name}"
    assert served_rate >= SERVED_GATE, (
        f"{name}: warm run computed {warm_stats.misses} of "
        f"{warm_stats.requests} requests (served rate "
        f"{served_rate:.1%} < {SERVED_GATE:.0%})")
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "requests": warm_stats.requests,
        "store_hits": warm_stats.store_hits,
        "warm_misses": warm_stats.misses,
        "served_rate": served_rate,
        "store_entries": store_entries,
        "store_bytes": store_path.stat().st_size,
    }


def run_benchmark(quick: bool = False) -> dict:
    nasaic_config = NASAICConfig(
        seed=SEED, **(NASAIC_QUICK if quick else NASAIC_SCALE))
    mc_runs = MC_QUICK_RUNS if quick else MC_RUNS
    with tempfile.TemporaryDirectory() as workdir:
        nasaic = cold_warm(
            lambda store: timed_nasaic(store, nasaic_config),
            Path(workdir), "nasaic")
    best_mc: dict | None = None
    for attempt in range(ATTEMPTS):
        with tempfile.TemporaryDirectory() as workdir:
            mc = cold_warm(lambda store: timed_mc(store, mc_runs),
                           Path(workdir), "mc")
        if best_mc is None or mc["speedup"] > best_mc["speedup"]:
            best_mc = mc
        if best_mc["speedup"] >= SPEEDUP_GATE:
            break
    best_mc["attempts"] = attempt + 1
    return {"nasaic": nasaic, "mc": best_mc}


def render(report: dict) -> str:
    def block(name: str, r: dict) -> str:
        return (f"{name}: cold {r['cold_s'] * 1e3:.0f} ms -> warm "
                f"{r['warm_s'] * 1e3:.0f} ms ({r['speedup']:.2f}x); "
                f"{r['store_hits']}/{r['requests']} requests from store, "
                f"{r['warm_misses']} computed "
                f"({r['served_rate']:.1%} served; gate >= "
                f"{SERVED_GATE:.0%}); "
                f"{r['store_entries']} entries / "
                f"{r['store_bytes'] / 1024:.0f} KiB on disk")

    mc = report["mc"]
    return (
        "Persistent store warm start (two sessions per family, "
        "bit-identical outcomes)\n"
        + block("NASAIC (hw + training; speedup reported)",
                report["nasaic"]) + "\n"
        + block(f"MC     (pure hw pricing; gate >= "
                f"{SPEEDUP_GATE:.1f}x, best of {mc['attempts']})", mc))


def to_json(report: dict) -> dict:
    """Flatten into the BENCH_store.json schema."""
    def block(r: dict) -> dict:
        return {
            "cold_ms": r["cold_s"] * 1e3,
            "warm_ms": r["warm_s"] * 1e3,
            "speedup": r["speedup"],
            "requests": r["requests"],
            "store_hits": r["store_hits"],
            "warm_misses": r["warm_misses"],
            "served_rate": r["served_rate"],
            "store_entries": r["store_entries"],
            "store_bytes": r["store_bytes"],
        }

    return {
        "nasaic": block(report["nasaic"]),
        "mc": {**block(report["mc"]), "attempts": report["mc"]["attempts"]},
        "gate": (f"mc speedup >= {SPEEDUP_GATE}x, served_rate >= "
                 f"{SERVED_GATE} (both), outcomes bit-identical (both)"),
    }


# ----------------------------------------------------------------------
# Scale mode: the offset-index tier at ~10^6 entries
# ----------------------------------------------------------------------
def _synthetic_entry(i: int):
    """Deterministic synthetic record ``i``: a handful of contexts,
    per-design digests and unique keys — the shape a long campaign
    writes (the service's digest is a content hash of the key)."""
    salt = f"scale-context-{i % 7}"
    digest = f"scale-digest-{i}"
    key = ("design", i, i % 13)
    evaluation = {"objective": i * 0.5, "latency_ms": float(i % 97),
                  "feasible": bool(i % 3)}
    return salt, digest, key, evaluation


def _build_corpus(path: Path, entries: int) -> float:
    """Append ``entries`` synthetic records in batches; returns build
    seconds.  Several ``put_memo`` rounds leave superseded memo records
    behind so the compaction stage has something real to drop."""
    started = time.perf_counter()
    with EvalStore(path) as store:
        for base in range(0, entries, SCALE_BATCH):
            store.put_many([_synthetic_entry(i) for i in
                            range(base, min(base + SCALE_BATCH, entries))])
            store.put_memo(f"scale-params-{base % 5}",
                           {("memo", base): base * 1.0})
        assert len(store) == entries, "corpus build dropped entries"
    return time.perf_counter() - started


def _measure_store(path: Path, entries: int) -> dict:
    """Open time (best of ``SCALE_OPEN_REPS`` fresh constructions) and
    warm per-lookup seconds over sampled known addresses."""
    open_s = float("inf")
    for _ in range(SCALE_OPEN_REPS):
        started = time.perf_counter()
        store = EvalStore(path, read_only=True)
        open_s = min(open_s, time.perf_counter() - started)
        store.close()
    probes = [_synthetic_entry(i * (entries // SCALE_PROBES) % entries)
              for i in range(SCALE_PROBES)]
    store = EvalStore(path, read_only=True)
    try:
        assert store.index_used, "store opened without its offset index"
        for salt, digest, key, expected in probes:  # warm up: memmap
            assert store.get(salt, digest, key) == expected
        started = time.perf_counter()
        for rep in range(SCALE_LOOKUP_REPS):
            salt, digest, key, _ = probes[rep % len(probes)]
            store.get(salt, digest, key)
        lookup_s = (time.perf_counter() - started) / SCALE_LOOKUP_REPS
    finally:
        store.close()
    return {"entries": entries, "open_s": open_s, "lookup_s": lookup_s,
            "bytes": path.stat().st_size}


def run_scale_benchmark(quick: bool = False) -> dict:
    target = SCALE_QUICK_TARGET if quick else SCALE_TARGET
    with tempfile.TemporaryDirectory() as workdir:
        small_path = Path(workdir) / "small.store"
        large_path = Path(workdir) / "large.store"
        _build_corpus(small_path, SCALE_BASELINE)
        build_s = _build_corpus(large_path, target)
        small = _measure_store(small_path, SCALE_BASELINE)
        large = _measure_store(large_path, target)

        # Compaction: answers must be bit-identical before and after,
        # live and across a cold reopen.
        probes = [_synthetic_entry(i * (target // SCALE_PROBES) % target)
                  for i in range(SCALE_PROBES)]
        with EvalStore(large_path) as store:
            before = [store.get(s, d, k) for s, d, k, _ in probes]
            report = store.compact()
            after = [store.get(s, d, k) for s, d, k, _ in probes]
        assert after == before, "compaction changed a live answer"
        with EvalStore(large_path, read_only=True) as store:
            cold = [store.get(s, d, k) for s, d, k, _ in probes]
        assert cold == before, "compaction changed an answer on reopen"
        compaction = {"bytes_before": report["bytes_before"],
                      "bytes_after": report["bytes_after"],
                      "records_dropped": report["records_dropped"],
                      "probes": len(probes)}
    open_gate_s = max(SCALE_RATIO_GATE * small["open_s"],
                      SCALE_OPEN_FLOOR_S)
    lookup_gate_s = max(SCALE_RATIO_GATE * small["lookup_s"],
                        SCALE_LOOKUP_FLOOR_S)
    return {"baseline": small, "scaled": large, "build_s": build_s,
            "open_gate_s": open_gate_s, "lookup_gate_s": lookup_gate_s,
            "compaction": compaction,
            "open_ok": large["open_s"] <= open_gate_s,
            "lookup_ok": large["lookup_s"] <= lookup_gate_s}


def render_scale(report: dict) -> str:
    small, large = report["baseline"], report["scaled"]
    comp = report["compaction"]

    def block(name: str, r: dict) -> str:
        return (f"{name}: {r['entries']:>9,} entries / "
                f"{r['bytes'] / 1e6:7.1f} MB — open "
                f"{r['open_s'] * 1e3:6.2f} ms, warm lookup "
                f"{r['lookup_s'] * 1e6:6.1f} us")

    return (
        "Store scale: offset-index open + lazy lookups "
        f"(gate: <= {SCALE_RATIO_GATE:.0f}x baseline, floors "
        f"{SCALE_OPEN_FLOOR_S * 1e3:.0f} ms / "
        f"{SCALE_LOOKUP_FLOOR_S * 1e6:.0f} us)\n"
        + block("baseline", small) + "\n"
        + block("scaled  ", large)
        + f" [{'OK' if report['open_ok'] else 'FAIL'} open, "
        f"{'OK' if report['lookup_ok'] else 'FAIL'} lookup]\n"
        f"compaction: {comp['bytes_before'] / 1e6:.1f} MB -> "
        f"{comp['bytes_after'] / 1e6:.1f} MB, "
        f"{comp['records_dropped']} records dropped, "
        f"{comp['probes']} probed answers bit-identical "
        "(live + cold reopen)")


def to_scale_json(report: dict) -> dict:
    """Flatten into the BENCH_store_scale.json schema."""
    def block(r: dict) -> dict:
        return {"entries": r["entries"], "bytes": r["bytes"],
                "open_ms": r["open_s"] * 1e3,
                "lookup_us": r["lookup_s"] * 1e6}

    small, large = report["baseline"], report["scaled"]
    return {
        "baseline": block(small),
        "scaled": {**block(large),
                   "open_ratio": large["open_s"] / small["open_s"],
                   "lookup_ratio": large["lookup_s"] / small["lookup_s"]},
        "build_s": report["build_s"],
        "compaction": report["compaction"],
        "gate": (f"scaled open <= max({SCALE_RATIO_GATE}x baseline, "
                 f"{SCALE_OPEN_FLOOR_S * 1e3:.0f}ms) and scaled warm "
                 f"lookup <= max({SCALE_RATIO_GATE}x baseline, "
                 f"{SCALE_LOOKUP_FLOOR_S * 1e6:.0f}us); compacted "
                 "answers bit-identical"),
    }


def test_store_scale(benchmark=None):
    """Acceptance: open time and warm-lookup latency stay flat (<= 2x
    with noise floors) from 10^3 to the scaled corpus, and compaction
    preserves every probed answer bit-identically."""
    if benchmark is not None:
        from benchmarks.conftest import (FULL_SCALE, run_once, write_json,
                                         write_report)

        report = run_once(benchmark,
                          lambda: run_scale_benchmark(quick=not FULL_SCALE))
        write_report("bench_store_scale", render_scale(report))
        write_json("store_scale", to_scale_json(report))
    else:
        report = run_scale_benchmark(quick=True)
    assert report["open_ok"] and report["lookup_ok"], render_scale(report)


def test_store_warm_start(benchmark=None):
    """Acceptance: bit-identical warm starts and >= 90% served from the
    store (asserted inside run_benchmark), MC session >= 2x faster."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, run_benchmark)
        write_report("bench_store", render(report))
        write_json("store", to_json(report))
    else:
        report = run_benchmark()
    assert report["mc"]["speedup"] >= SPEEDUP_GATE, render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke tests")
    parser.add_argument("--scale", action="store_true",
                        help="gate the offset-index tier at scale "
                             "instead of the warm-start sessions")
    args = parser.parse_args(argv)
    if args.scale:
        report = run_scale_benchmark(quick=args.quick)
        print(render_scale(report))
        try:
            from benchmarks.conftest import write_json

            write_json("store_scale", to_scale_json(report))
        except ImportError:  # pragma: no cover - repo root not on path
            pass
        if not (report["open_ok"] and report["lookup_ok"]):
            print("FAIL: store scale gates missed (see above)",
                  file=sys.stderr)
            return 1
        return 0
    report = run_benchmark(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("store", to_json(report))
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    if report["mc"]["speedup"] < SPEEDUP_GATE:
        print(f"FAIL: MC warm-start speedup "
              f"{report['mc']['speedup']:.2f}x below the "
              f"{SPEEDUP_GATE:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
