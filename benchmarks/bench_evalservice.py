"""EvalService benchmark: cached vs uncached hardware evaluation.

The NASAIC controller revisits near-identical (networks, accelerator)
pairs constantly, so the evaluation service's content-hash cache should
dominate on a repeat-heavy trace.  This benchmark builds such a trace
(``TRACE_LEN`` requests drawn from ``UNIQUE_PAIRS`` distinct designs,
mimicking a converging controller), prices it through

- the bare uncached serial ``Evaluator`` (the pre-service hot path), and
- an ``EvalService`` with the LRU cache,

verifies the two paths agree **bit for bit**, and reports the speedup.
It doubles as the acceptance gate for the service: the cached path must
be at least 2x faster.

Machine-readable record: ``benchmarks/results/BENCH_evalservice.json``
with keys ``speedup`` (gated), ``uncached_ms`` / ``cached_ms``,
``unique_pairs`` / ``trace_len``, ``gate``, ``hit_rate``, ``computed``
(cache misses actually priced), and ``pricing`` (the service's
uncached-pricing counters: cost-table memo hits/misses and HAP move
prunes/resumes — see
:class:`repro.core.evalservice.EvalServiceStats`), so the perf
trajectory is tracked across PRs.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_evalservice.py [--quick]

or through pytest (``pytest benchmarks/bench_evalservice.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.accel import AllocationSpace
from repro.core import EvalService, Evaluator
from repro.cost import CostModel
from repro.utils.rng import new_rng, spawn_rng
from repro.utils.tables import format_table
from repro.workloads import w1

#: Repeat-heavy trace shape (quick mode shrinks both).
UNIQUE_PAIRS = 16
TRACE_LEN = 240
MIN_SPEEDUP = 2.0
#: Timing attempts before declaring the gate failed: the identity check
#: is deterministic, but wall-clock ratios can flake on shared CI
#: runners, so a scheduler hiccup gets two more chances while a real
#: regression (ratio ~1x) fails every attempt.
MAX_ATTEMPTS = 3


def build_trace(unique_pairs: int, trace_len: int, seed: int = 5):
    """A design trace with heavy revisiting, like a converging search."""
    workload = w1()
    alloc = AllocationSpace()
    master = new_rng(seed)
    sample_rng = spawn_rng(master, 0)
    order_rng = spawn_rng(master, 1)
    pairs = []
    for _ in range(unique_pairs):
        networks = tuple(
            task.space.decode(task.space.random_indices(sample_rng))
            for task in workload.tasks)
        pairs.append((networks, alloc.random_design(sample_rng)))
    trace = [pairs[int(i)] for i in
             order_rng.integers(0, unique_pairs, size=trace_len)]
    return workload, trace


def make_evaluator(workload) -> Evaluator:
    """Hardware-path evaluator with a fresh (empty) cost-model cache."""
    return Evaluator(workload, CostModel(), trainer=None)


def run_benchmark(quick: bool = False) -> dict:
    """Time both paths on the same trace and check bit-identity."""
    unique = 6 if quick else UNIQUE_PAIRS
    length = 48 if quick else TRACE_LEN
    workload, trace = build_trace(unique, length)

    make_evaluator(workload).evaluate_hardware(*trace[0])  # warm-up

    uncached_evaluator = make_evaluator(workload)
    started = time.perf_counter()
    uncached = [uncached_evaluator.evaluate_hardware(*pair)
                for pair in trace]
    uncached_s = time.perf_counter() - started

    service = EvalService(make_evaluator(workload))
    started = time.perf_counter()
    cached = service.evaluate_many(trace)
    cached_s = time.perf_counter() - started

    assert cached == uncached, (
        "cached and uncached paths diverged — bit-identity violated")
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    return {
        "unique_pairs": unique,
        "trace_len": length,
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": speedup,
        "stats": service.stats,
    }


def render(report: dict) -> str:
    stats = report["stats"]
    table = format_table(
        ["path", "wall-clock", "requests", "computed"],
        [
            ["uncached serial", f"{report['uncached_s'] * 1e3:.1f} ms",
             report["trace_len"], report["trace_len"]],
            ["EvalService (LRU)", f"{report['cached_s'] * 1e3:.1f} ms",
             stats.requests, stats.misses],
        ],
        title=(f"EvalService on a repeat-heavy trace "
               f"({report['unique_pairs']} unique designs, "
               f"{report['trace_len']} requests)"))
    return (f"{table}\n"
            f"speedup: {report['speedup']:.1f}x "
            f"(gate: >= {MIN_SPEEDUP:.0f}x)   {stats.summary()}\n"
            f"{stats.pricing_summary()}")


def to_json(report: dict) -> dict:
    """Flatten a benchmark report into the BENCH_evalservice.json schema."""
    stats = report["stats"]
    return {
        "unique_pairs": report["unique_pairs"],
        "trace_len": report["trace_len"],
        "uncached_ms": report["uncached_s"] * 1e3,
        "cached_ms": report["cached_s"] * 1e3,
        "speedup": report["speedup"],
        "gate": MIN_SPEEDUP,
        "hit_rate": stats.hit_rate,
        "computed": stats.misses,
        "pricing": {
            "cost_memo_hits": stats.cost_memo_hits,
            "cost_memo_misses": stats.cost_memo_misses,
            "hap_moves_priced": stats.hap_moves_priced,
            "hap_moves_pruned": stats.hap_moves_pruned,
            "hap_moves_resumed": stats.hap_moves_resumed,
            "hap_steps_saved": stats.hap_steps_saved,
            "hap_steps_replayed": stats.hap_steps_replayed,
        },
    }


def run_gated(quick: bool = False) -> dict:
    """Best report over up to MAX_ATTEMPTS timing runs (early exit once
    the gate is met, so the usual cost is a single run)."""
    best = None
    for _ in range(MAX_ATTEMPTS):
        report = run_benchmark(quick=quick)
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= MIN_SPEEDUP:
            break
    return best


def test_cached_speedup(benchmark=None):
    """Acceptance: >= 2x over the uncached serial evaluator, identical
    results (the identity assert lives inside run_benchmark)."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, run_gated)
        write_report("bench_evalservice", render(report))
        write_json("evalservice", to_json(report))
    else:
        report = run_gated()
    assert report["speedup"] >= MIN_SPEEDUP, render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trace for CI smoke runs")
    args = parser.parse_args(argv)
    report = run_gated(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("evalservice", to_json(report))
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    if report["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {report['speedup']:.2f}x below the "
              f"{MIN_SPEEDUP:.0f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
