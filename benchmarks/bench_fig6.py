"""Benchmarks regenerating the three panels of Fig. 6 (W1, W2, W3).

Paper shape per panel: every NASAIC-explored solution meets the specs;
the best solution's accuracies sit far above the smallest-network lower
bounds (78.93% CIFAR, 71.57% STL, 0.6462 IOU); and for W1 the best
solution runs close to the energy bound (the paper quotes 97.12%).
"""

import pytest

from benchmarks.conftest import SCALE, run_once, write_report
from repro.experiments import format_fig6, run_fig6
from repro.workloads import w1, w2, w3


@pytest.mark.parametrize("workload_fn,panel", [
    (w1, "fig6_w1"), (w2, "fig6_w2"), (w3, "fig6_w3")])
def test_fig6(benchmark, workload_fn, panel):
    workload = workload_fn()
    result = run_once(benchmark, lambda: run_fig6(
        workload,
        episodes=SCALE["episodes"],
        hw_steps=SCALE["hw_steps"],
        lower_bound_designs=200,
        seed=43))
    write_report(panel, format_fig6(result))
    assert result.all_explored_feasible, \
        "every NASAIC solution must meet the specs"
    assert result.best is not None, "a feasible best solution must exist"
    # Best solution beats the smallest-network lower bound on every task.
    for best_acc, lb_acc in zip(result.best.accuracies,
                                result.lower_bound_accuracies):
        assert best_acc > lb_acc
    # At least one spec dimension is nearly saturated (resource-bounded
    # accuracy, §V-B).
    assert max(result.spec_utilisation()) > 0.75
