"""Campaign benchmark: shared cross-run cache vs serial ad-hoc loops.

Before the unified driver, multi-scenario studies ran each search loop
with its own freshly built evaluation machinery — nothing learned by
one scenario ever helped the next.  The campaign runner executes the
same grid over shared, context-keyed evaluation services, so scenarios
that revisit designs (budget sweeps, seed restarts, optimiser
comparisons on one workload) answer from the cross-run cache, and one
cross-design cost-table memo spans the whole study.

This benchmark runs a 4-scenario W1 grid (NASAIC at two budgets with
one seed — the larger budget replays the smaller one's episode prefix —
plus an EA and an MC scenario) twice:

- **serial ad-hoc**: each scenario standalone with private services
  (the pre-campaign formulation), and
- **campaign**: the same grid through one shared-cache campaign,

verifies the two produce **identical search outcomes** (sharing only
changes *when* a pair is priced, never its value), and reports the
cross-scenario hit rate and wall-clock.  The gate is correctness-plus-
reuse: outcomes bit-identical and ``shared_hits > 0``; the wall-clock
ratio is reported (not gated — on these small grids the saved pricing
is real but single-core timing noise can exceed it).

Machine-readable record: ``benchmarks/results/BENCH_campaign.json``
with keys ``scenarios``, ``serial_ms`` / ``campaign_ms``, ``speedup``,
``shared_hits``, ``shared_hit_rate`` (gated > 0), ``hit_rate`` and
``requests``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src:. python benchmarks/bench_campaign.py [--quick]

or through pytest (``pytest benchmarks/bench_campaign.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import (
    NASAIC,
    NASAICConfig,
    EvolutionConfig,
    EvolutionarySearch,
    monte_carlo_search,
)
from repro.core.campaign import Campaign, CampaignConfig, Scenario
from repro.core.serialization import result_to_dict
from repro.utils.tables import format_table
from repro.workloads import w1

#: Budgets of the two NASAIC scenarios (quick mode shrinks everything).
NASAIC_BUDGETS = (6, 10)
EA_GENERATIONS = 3
EA_POPULATION = 12
MC_RUNS = 120
SEED = 5


def build_grid(quick: bool):
    small, large = ((2, 4) if quick else NASAIC_BUDGETS)
    generations = 2 if quick else EA_GENERATIONS
    population = 8 if quick else EA_POPULATION
    runs = 40 if quick else MC_RUNS
    nasaic_cfgs = [NASAICConfig(episodes=episodes, hw_steps=5, seed=SEED)
                   for episodes in (small, large)]
    ea_cfg = EvolutionConfig(population=population,
                             generations=generations, elite=2, seed=SEED)
    scenarios = tuple(
        [Scenario("W1", "nasaic", cfg.episodes, seed=SEED,
                  options={"config": cfg}) for cfg in nasaic_cfgs]
        + [Scenario("W1", "evolution", generations, seed=SEED,
                    options={"config": ea_cfg}),
           Scenario("W1", "mc", runs, seed=SEED)])
    return scenarios, nasaic_cfgs, ea_cfg, runs


def outcome_shape(result) -> dict:
    """Search outcome facts that must not depend on cache sharing."""
    payload = result_to_dict(result)
    for key in ("cache_hits", "cache_misses", "eval_seconds", "pricing"):
        payload.pop(key)
    return payload


def run_serial_adhoc(nasaic_cfgs, ea_cfg, runs) -> tuple[list, float]:
    """The pre-campaign formulation: isolated services per scenario."""
    started = time.perf_counter()
    results = [NASAIC(w1(), config=cfg).run() for cfg in nasaic_cfgs]
    results.append(EvolutionarySearch(w1(), config=ea_cfg).run())
    results.append(monte_carlo_search(w1(), runs=runs, seed=SEED))
    return results, time.perf_counter() - started


def run_benchmark(quick: bool = False) -> dict:
    scenarios, nasaic_cfgs, ea_cfg, runs = build_grid(quick)
    serial_results, serial_s = run_serial_adhoc(nasaic_cfgs, ea_cfg, runs)
    started = time.perf_counter()
    with Campaign(CampaignConfig(scenarios=scenarios)) as campaign:
        result = campaign.run()
    campaign_s = time.perf_counter() - started
    # Bit-identity: the shared cache may not change a single outcome.
    for outcome, reference in zip(result.outcomes, serial_results):
        got = outcome_shape(outcome.result)
        want = outcome_shape(reference)
        assert got == want, \
            f"campaign outcome diverged for {outcome.scenario.name}"
    cache = result.cache
    return {
        "scenarios": [o.scenario.name for o in result.outcomes],
        "serial_s": serial_s,
        "campaign_s": campaign_s,
        "speedup": serial_s / campaign_s if campaign_s > 0 else
        float("inf"),
        "requests": cache["requests"],
        "hits": cache["hits"],
        "hit_rate": cache["hit_rate"],
        "shared_hits": cache["shared_hits"],
        "shared_hit_rate": cache["shared_hit_rate"],
        "outcomes": result.outcomes,
    }


def render(report: dict) -> str:
    rows = [
        [outcome.scenario.name,
         outcome.eval_stats.requests if outcome.eval_stats else 0,
         outcome.eval_stats.hits if outcome.eval_stats else 0,
         outcome.eval_stats.shared_hits if outcome.eval_stats else 0,
         f"{outcome.wall_seconds:.2f}"]
        for outcome in report["outcomes"]]
    table = format_table(
        ["scenario", "hw reqs", "hits", "shared", "wall/s"],
        rows,
        title=(f"Campaign vs serial ad-hoc loops "
               f"({len(report['scenarios'])} scenarios, identical "
               f"outcomes)"))
    return (f"{table}\n"
            f"serial ad-hoc: {report['serial_s'] * 1e3:.0f} ms   "
            f"campaign (shared cache): "
            f"{report['campaign_s'] * 1e3:.0f} ms   "
            f"speedup: {report['speedup']:.2f}x\n"
            f"cache: {report['hit_rate']:.1%} hits, "
            f"{report['shared_hit_rate']:.1%} cross-scenario "
            f"({report['shared_hits']} shared hits; gate: > 0)")


def to_json(report: dict) -> dict:
    """Flatten into the BENCH_campaign.json schema."""
    return {
        "scenarios": report["scenarios"],
        "serial_ms": report["serial_s"] * 1e3,
        "campaign_ms": report["campaign_s"] * 1e3,
        "speedup": report["speedup"],
        "requests": report["requests"],
        "hits": report["hits"],
        "hit_rate": report["hit_rate"],
        "shared_hits": report["shared_hits"],
        "shared_hit_rate": report["shared_hit_rate"],
        "gate": "shared_hits > 0, outcomes bit-identical",
    }


def test_campaign_shared_cache(benchmark=None):
    """Acceptance: identical outcomes (asserted inside run_benchmark)
    and a strictly positive cross-scenario hit rate."""
    if benchmark is not None:
        from benchmarks.conftest import run_once, write_json, write_report

        report = run_once(benchmark, run_benchmark)
        write_report("bench_campaign", render(report))
        write_json("campaign", to_json(report))
    else:
        report = run_benchmark()
    assert report["shared_hits"] > 0, render(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI smoke runs")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    print(render(report))
    try:
        from benchmarks.conftest import write_json

        write_json("campaign", to_json(report))
    except ImportError:  # pragma: no cover - repo root not on sys.path
        pass
    if report["shared_hits"] <= 0:
        print("FAIL: no cross-scenario cache reuse observed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
