"""Benchmarks regenerating Table I (W1 and W2).

Paper shape: NAS->ASIC violates the specs on both workloads; NASAIC (and
usually ASIC->HW-NAS) meet them; NASAIC's accuracy loss vs the
unconstrained NAS networks stays small (paper: 0.76% W1, 1.17% W2)
while latency/energy/area drop substantially (paper W1: 17.77%, 2.49x,
2.32x).
"""

import pytest

from benchmarks.conftest import SCALE, run_once, write_report
from repro.core import NASAICConfig
from repro.experiments import format_table1, run_table1
from repro.workloads import w1, w2


@pytest.mark.parametrize("workload_fn,name", [(w1, "table1_w1"),
                                              (w2, "table1_w2")])
def test_table1(benchmark, workload_fn, name):
    workload = workload_fn()
    result = run_once(benchmark, lambda: run_table1(
        workload,
        nas_episodes=SCALE["nas_episodes"],
        mc_runs=SCALE["mc_runs"] // 2,
        seed=47,
        nasaic_config=NASAICConfig(
            episodes=SCALE["episodes"], hw_steps=SCALE["hw_steps"],
            seed=49)))
    write_report(name, format_table1([result]))
    assert not result.nas_asic.meets_specs, \
        "NAS->ASIC must violate the specs"
    assert result.nasaic.meets_specs, "NASAIC must meet the specs"
    lat_red, energy_x, area_x = result.reductions_vs_nas_asic()
    assert energy_x > 1.0, "NASAIC must reduce energy vs NAS->ASIC"
    assert area_x > 1.0, "NASAIC must reduce area vs NAS->ASIC"
    # Accuracy loss vs unconstrained NAS stays bounded (paper: ~1%).
    assert result.accuracy_loss_vs_nas() < 6.0
