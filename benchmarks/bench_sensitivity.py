"""Ablation G: sensitivity of NASAIC to rho, phi and beta.

Quantifies the framework's design choices on W3 (see
``repro.experiments.sensitivity`` for expected shapes).  Asserted:
a tiny ``rho`` must not *improve* the feasible outcome (the penalty
exists to enforce the specs), and the largest episode budget must not be
worse than the smallest.
"""

from benchmarks.conftest import FULL_SCALE, run_once, write_report
from repro.experiments import format_sensitivity, run_sensitivity
from repro.workloads import w3


def test_sensitivity(benchmark):
    episodes = 150 if not FULL_SCALE else 300
    points = run_once(benchmark, lambda: run_sensitivity(
        w3(), episodes=episodes, seed=79,
        rho_values=(0.5, 10.0),
        phi_values=(0, 10),
        beta_values=(50, episodes)))
    write_report("ablation_sensitivity",
                 format_sensitivity(points, "W3"))
    by_key = {(p.parameter, p.value): p for p in points}
    # All sweeps should find something feasible at these scales.
    assert all(p.best_weighted is not None for p in points)
    # More episodes never hurts (monotone with tolerance for RL noise).
    beta_small = by_key[("beta", 50.0)].best_weighted
    beta_large = by_key[("beta", float(episodes))].best_weighted
    assert beta_large >= beta_small - 0.02
    # phi=10 prunes less often than phi=0 per feasible solution found.
    phi0 = by_key[("phi", 0.0)]
    phi10 = by_key[("phi", 10.0)]
    assert phi10.feasible_solutions >= phi0.feasible_solutions - 20
